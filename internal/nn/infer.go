package nn

import (
	"math"

	"computecovid19/internal/ag"
	"computecovid19/internal/memplan"
	"computecovid19/internal/tensor"
)

// Infer methods run each layer's eval-mode forward on plain tensors
// drawn from a memplan.Scope, building no autograd tape and allocating
// nothing on a warm arena. Every method computes bit-identical results
// to the corresponding Forward in eval mode (same loop order, same
// float32/float64 conversions); the identity is pinned by tests in
// ddnet and classify. Callers own their input tensor: a layer never
// frees x, only the intermediates it creates.

// Infer applies the convolution on the pooled eval path.
func (l *Conv2D) Infer(sc *memplan.Scope, x *tensor.Tensor) *tensor.Tensor {
	return ag.EvalConv2D(sc, x, l.W.T, biasTensor(l.B), l.Cfg)
}

// Infer applies the transposed convolution on the pooled eval path.
func (l *ConvTranspose2D) Infer(sc *memplan.Scope, x *tensor.Tensor) *tensor.Tensor {
	return ag.EvalConvTranspose2D(sc, x, l.W.T, biasTensor(l.B), l.Cfg)
}

// Infer applies the 3D convolution on the pooled eval path.
func (l *Conv3D) Infer(sc *memplan.Scope, x *tensor.Tensor) *tensor.Tensor {
	return ag.EvalConv3D(sc, x, l.W.T, biasTensor(l.B), l.Cfg)
}

func biasTensor(b *ag.Value) *tensor.Tensor {
	if b == nil {
		return nil
	}
	return b.T
}

// Infer normalizes x with the running statistics. The layer must be in
// eval mode: batch statistics would mutate the running buffers, which
// is never wanted on a serving path.
func (l *BatchNorm) Infer(sc *memplan.Scope, x *tensor.Tensor) *tensor.Tensor {
	if l.training {
		panic("nn: BatchNorm.Infer requires eval mode (call SetTraining(false))")
	}
	n := x.Shape[0]
	c := x.Shape[1]
	spatial := 1
	for _, d := range x.Shape[2:] {
		spatial *= d
	}
	out := sc.Get(x.Shape...)
	for ni := 0; ni < n; ni++ {
		for ci := 0; ci < c; ci++ {
			base := (ni*c + ci) * spatial
			g := l.Gamma.T.Data[ci]
			b := l.Beta.T.Data[ci]
			// Same float64 round trip as ag.BatchNorm's eval branch:
			// the running mean survives it exactly, and the inverse
			// std is computed in float64 before narrowing.
			mu := float32(float64(l.RunningMean.Data[ci]))
			is := float32(1.0 / math.Sqrt(float64(l.RunningVar.Data[ci])+float64(l.Eps)))
			for i := 0; i < spatial; i++ {
				xh := (x.Data[base+i] - mu) * is
				out.Data[base+i] = g*xh + b
			}
		}
	}
	return out
}

// Infer applies x·Wᵀ + b on the pooled eval path.
func (l *Linear) Infer(sc *memplan.Scope, x *tensor.Tensor) *tensor.Tensor {
	return ag.EvalLinear(sc, x, l.W.T, l.B.T)
}

// Infer runs BN→act→1×1→BN→act→k×k, freeing every intermediate as soon
// as its consumer has run. The activations mutate fresh BN outputs in
// place, which is safe because the graph twin is out-of-place and the
// BN output has no other reader.
func (l *DenseLayer2D) Infer(sc *memplan.Scope, x *tensor.Tensor) *tensor.Tensor {
	h := l.BN1.Infer(sc, x)
	ag.EvalLeakyReLUInPlace(h, l.Slope)
	h2 := l.Conv1.Infer(sc, h)
	sc.Free(h)
	h3 := l.BN2.Infer(sc, h2)
	sc.Free(h2)
	ag.EvalLeakyReLUInPlace(h3, l.Slope)
	out := l.Conv2.Infer(sc, h3)
	sc.Free(h3)
	return out
}

// Infer runs BN→ReLU→1³→BN→ReLU→k³ with eager frees (ReLU is
// LeakyReLU with slope 0, matching ag.ReLU bit for bit).
func (l *DenseLayer3D) Infer(sc *memplan.Scope, x *tensor.Tensor) *tensor.Tensor {
	h := l.BN1.Infer(sc, x)
	ag.EvalLeakyReLUInPlace(h, 0)
	h2 := l.Conv1.Infer(sc, h)
	sc.Free(h)
	h3 := l.BN2.Infer(sc, h2)
	sc.Free(h2)
	ag.EvalLeakyReLUInPlace(h3, 0)
	out := l.Conv2.Infer(sc, h3)
	sc.Free(h3)
	return out
}

// Infer runs the dense connectivity pattern on the pooled eval path.
// The feature list lives in a stack array for DDnet-sized blocks
// (≤ 7 layers); intermediate concats are freed once consumed.
func (b *DenseBlock2D) Infer(sc *memplan.Scope, x *tensor.Tensor) *tensor.Tensor {
	var featArr [8]*tensor.Tensor
	features := append(featArr[:0], x)
	for _, l := range b.Layers {
		in := ag.EvalConcat(sc, 1, features)
		y := l.Infer(sc, in)
		if in != x {
			sc.Free(in)
		}
		features = append(features, y)
	}
	out := ag.EvalConcat(sc, 1, features)
	for _, f := range features[1:] {
		sc.Free(f)
	}
	return out
}

// Infer runs the 3D dense connectivity pattern on the pooled eval path.
func (b *DenseBlock3D) Infer(sc *memplan.Scope, x *tensor.Tensor) *tensor.Tensor {
	var featArr [8]*tensor.Tensor
	features := append(featArr[:0], x)
	for _, l := range b.Layers {
		in := ag.EvalConcat(sc, 1, features)
		y := l.Infer(sc, in)
		if in != x {
			sc.Free(in)
		}
		features = append(features, y)
	}
	out := ag.EvalConcat(sc, 1, features)
	for _, f := range features[1:] {
		sc.Free(f)
	}
	return out
}
