// Per-layer forward timing: Timed wraps any Module so its Forward calls
// show up as obs spans and feed a per-layer latency histogram. Wrapping
// is opt-in and composable (a Sequential of Timed modules yields a
// per-layer breakdown); the unwrapped fast path pays nothing.
package nn

import (
	"fmt"
	"time"

	"computecovid19/internal/ag"
	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
)

// Timed is a Module decorator that times every Forward call. Construct
// with NewTimed so the metric handle is resolved once.
type Timed struct {
	// Name labels the layer in spans and metrics.
	Name string
	// Mod is the wrapped module.
	Mod Module

	spanName string
	hist     *obs.Histogram
}

// NewTimed wraps m so each Forward records an obs span ("nn/<name>")
// and an observation in nn_forward_seconds{layer="<name>"}.
func NewTimed(name string, m Module) *Timed {
	return &Timed{
		Name:     name,
		Mod:      m,
		spanName: "nn/" + name,
		hist:     obs.GetHistogram(fmt.Sprintf("nn_forward_seconds{layer=%q}", name), nil),
	}
}

// TimedSeq wraps every submodule of a Sequential with NewTimed, naming
// layers prefix/0, prefix/1, … — a one-call per-layer breakdown for
// Sequential-built networks.
func TimedSeq(prefix string, s *Sequential) *Sequential {
	out := &Sequential{Mods: make([]Module, len(s.Mods))}
	for i, m := range s.Mods {
		out.Mods[i] = NewTimed(fmt.Sprintf("%s/%d", prefix, i), m)
	}
	return out
}

// Forward times the wrapped module's Forward.
func (t *Timed) Forward(x *ag.Value) *ag.Value {
	sp := obs.Start(t.spanName)
	start := time.Now()
	y := t.Mod.Forward(x)
	t.hist.Observe(time.Since(start).Seconds())
	sp.End()
	return y
}

// Params delegates to the wrapped module.
func (t *Timed) Params() []*ag.Value { return t.Mod.Params() }

// SetTraining delegates to the wrapped module.
func (t *Timed) SetTraining(train bool) { t.Mod.SetTraining(train) }

// stateTensors keeps serialization transparent through the wrapper.
func (t *Timed) stateTensors() []*tensor.Tensor {
	if st, ok := t.Mod.(stateful); ok {
		return st.stateTensors()
	}
	return nil
}
