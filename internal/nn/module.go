// Package nn builds the neural-network module layer on top of the
// autograd engine: parameterized layers (convolutions, batch norm,
// linear), container modules (Sequential, the DenseBlock used by DDnet
// and DenseNet), optimizers (SGD, Adam) and learning-rate schedules, plus
// binary model serialization.
//
// It plays the role of torch.nn / torch.optim in the paper's stack.
package nn

import (
	"math/rand"

	"computecovid19/internal/ag"
	"computecovid19/internal/tensor"
)

// Module is a composable network component.
type Module interface {
	// Forward applies the module to x on the autograd tape.
	Forward(x *ag.Value) *ag.Value
	// Params returns the trainable parameters in a stable order.
	Params() []*ag.Value
	// SetTraining toggles training-time behaviour (batch-norm statistics).
	SetTraining(train bool)
}

// state tensors (batch-norm running statistics) are serialized alongside
// parameters; modules with such state implement stateful.
type stateful interface {
	stateTensors() []*tensor.Tensor
}

// Sequential chains modules, feeding each one's output to the next.
type Sequential struct {
	Mods []Module
}

// NewSequential builds a Sequential from the given modules.
func NewSequential(mods ...Module) *Sequential { return &Sequential{Mods: mods} }

// Forward applies every module in order.
func (s *Sequential) Forward(x *ag.Value) *ag.Value {
	for _, m := range s.Mods {
		x = m.Forward(x)
	}
	return x
}

// Params collects the parameters of every submodule.
func (s *Sequential) Params() []*ag.Value {
	var ps []*ag.Value
	for _, m := range s.Mods {
		ps = append(ps, m.Params()...)
	}
	return ps
}

// SetTraining propagates the mode to every submodule.
func (s *Sequential) SetTraining(train bool) {
	for _, m := range s.Mods {
		m.SetTraining(train)
	}
}

func (s *Sequential) stateTensors() []*tensor.Tensor {
	var ts []*tensor.Tensor
	for _, m := range s.Mods {
		if st, ok := m.(stateful); ok {
			ts = append(ts, st.stateTensors()...)
		}
	}
	return ts
}

// StateTensors exposes the non-parameter state (batch-norm running
// statistics) of every submodule, satisfying StateProvider so external
// packages (model files, training checkpoints) can serialize a
// Sequential-based model without reaching into it.
func (s *Sequential) StateTensors() []*tensor.Tensor { return s.stateTensors() }

// Func wraps a stateless tape operation (activation, pooling, …) as a
// Module.
type Func struct {
	F func(x *ag.Value) *ag.Value
}

// Forward applies the wrapped function.
func (f *Func) Forward(x *ag.Value) *ag.Value { return f.F(x) }

// Params returns nil: Func has no parameters.
func (f *Func) Params() []*ag.Value { return nil }

// SetTraining is a no-op for stateless modules.
func (f *Func) SetTraining(bool) {}

// LeakyReLU returns a leaky-ReLU activation module. DDnet uses 0.01.
func LeakyReLU(slope float32) *Func {
	return &Func{F: func(x *ag.Value) *ag.Value { return ag.LeakyReLU(x, slope) }}
}

// ReLU returns a ReLU activation module.
func ReLU() *Func {
	return &Func{F: ag.ReLU}
}

// Sigmoid returns a sigmoid activation module.
func Sigmoid() *Func {
	return &Func{F: ag.Sigmoid}
}

// MaxPool2D returns a 2D max-pooling module.
func MaxPool2D(kernel, stride, padding int) *Func {
	cfg := ag.Pool2DConfig{Kernel: kernel, Stride: stride, Padding: padding}
	return &Func{F: func(x *ag.Value) *ag.Value { return ag.MaxPool2D(x, cfg) }}
}

// AvgPool2D returns a 2D average-pooling module.
func AvgPool2D(kernel, stride, padding int) *Func {
	cfg := ag.Pool2DConfig{Kernel: kernel, Stride: stride, Padding: padding}
	return &Func{F: func(x *ag.Value) *ag.Value { return ag.AvgPool2D(x, cfg) }}
}

// Upsample2D returns DDnet's bilinear un-pooling module.
func Upsample2D(scale int) *Func {
	return &Func{F: func(x *ag.Value) *ag.Value { return ag.UpsampleBilinear2D(x, scale) }}
}

// MaxPool3D returns a 3D max-pooling module.
func MaxPool3D(kernel, stride, padding int) *Func {
	cfg := ag.Pool2DConfig{Kernel: kernel, Stride: stride, Padding: padding}
	return &Func{F: func(x *ag.Value) *ag.Value { return ag.MaxPool3D(x, cfg) }}
}

// GaussianInit fills t from N(mean, std²), the paper's filter
// initialization (§3.1.1: mean 0, std 0.01).
func GaussianInit(t *tensor.Tensor, rng *rand.Rand, mean, std float64) {
	t.RandN(rng, mean, std)
}
