package nn

import (
	"math/rand"

	"computecovid19/internal/ag"
	"computecovid19/internal/tensor"
)

// Conv2D is a trainable 2D convolution layer.
type Conv2D struct {
	W, B *ag.Value
	Cfg  ag.Conv2DConfig
}

// NewConv2D builds a conv layer with weights drawn from N(0, std²); bias
// (if used) starts at zero. Pass std <= 0 for the paper's default 0.01.
func NewConv2D(rng *rand.Rand, inCh, outCh, kernel, stride, padding int, bias bool, std float64) *Conv2D {
	if std <= 0 {
		std = 0.01
	}
	w := tensor.New(outCh, inCh, kernel, kernel)
	GaussianInit(w, rng, 0, std)
	l := &Conv2D{
		W:   ag.Param(w),
		Cfg: ag.Conv2DConfig{Stride: stride, Padding: padding},
	}
	if bias {
		l.B = ag.Param(tensor.New(outCh))
	}
	return l
}

// Forward applies the convolution via the im2col fast path (which
// falls back to the direct kernels for shapes it does not cover).
func (l *Conv2D) Forward(x *ag.Value) *ag.Value { return ag.Conv2DFast(x, l.W, l.B, l.Cfg) }

// Params returns the weight (and bias, when present).
func (l *Conv2D) Params() []*ag.Value {
	if l.B != nil {
		return []*ag.Value{l.W, l.B}
	}
	return []*ag.Value{l.W}
}

// SetTraining is a no-op for convolutions.
func (l *Conv2D) SetTraining(bool) {}

// ConvTranspose2D is a trainable 2D transposed-convolution
// (deconvolution) layer, the reconstruction operator of DDnet.
type ConvTranspose2D struct {
	W, B *ag.Value
	Cfg  ag.Conv2DConfig
}

// NewConvTranspose2D builds a deconv layer with Gaussian-initialized
// weights of shape (inCh, outCh, k, k).
func NewConvTranspose2D(rng *rand.Rand, inCh, outCh, kernel, stride, padding int, bias bool, std float64) *ConvTranspose2D {
	if std <= 0 {
		std = 0.01
	}
	w := tensor.New(inCh, outCh, kernel, kernel)
	GaussianInit(w, rng, 0, std)
	l := &ConvTranspose2D{
		W:   ag.Param(w),
		Cfg: ag.Conv2DConfig{Stride: stride, Padding: padding},
	}
	if bias {
		l.B = ag.Param(tensor.New(outCh))
	}
	return l
}

// Forward applies the transposed convolution via the kernel-registry
// fast path (which falls back to the direct gather loops for shapes
// the registry rungs do not cover).
func (l *ConvTranspose2D) Forward(x *ag.Value) *ag.Value {
	return ag.ConvTranspose2DFast(x, l.W, l.B, l.Cfg)
}

// Params returns the weight (and bias, when present).
func (l *ConvTranspose2D) Params() []*ag.Value {
	if l.B != nil {
		return []*ag.Value{l.W, l.B}
	}
	return []*ag.Value{l.W}
}

// SetTraining is a no-op for convolutions.
func (l *ConvTranspose2D) SetTraining(bool) {}

// Conv3D is a trainable 3D convolution layer for volumetric networks.
type Conv3D struct {
	W, B *ag.Value
	Cfg  ag.Conv3DConfig
}

// NewConv3D builds a 3D conv layer with Gaussian-initialized weights.
func NewConv3D(rng *rand.Rand, inCh, outCh, kernel, stride, padding int, bias bool, std float64) *Conv3D {
	if std <= 0 {
		std = 0.01
	}
	w := tensor.New(outCh, inCh, kernel, kernel, kernel)
	GaussianInit(w, rng, 0, std)
	l := &Conv3D{
		W:   ag.Param(w),
		Cfg: ag.Conv3DConfig{Stride: stride, Padding: padding},
	}
	if bias {
		l.B = ag.Param(tensor.New(outCh))
	}
	return l
}

// Forward applies the 3D convolution.
func (l *Conv3D) Forward(x *ag.Value) *ag.Value { return ag.Conv3D(x, l.W, l.B, l.Cfg) }

// Params returns the weight (and bias, when present).
func (l *Conv3D) Params() []*ag.Value {
	if l.B != nil {
		return []*ag.Value{l.W, l.B}
	}
	return []*ag.Value{l.W}
}

// SetTraining is a no-op for convolutions.
func (l *Conv3D) SetTraining(bool) {}

// BatchNorm is a rank-generic batch-normalization layer ((N, C, ...)
// inputs), covering both BatchNorm2d and BatchNorm3d.
type BatchNorm struct {
	Gamma, Beta             *ag.Value
	RunningMean, RunningVar *tensor.Tensor
	Momentum, Eps           float32
	training                bool
}

// NewBatchNorm builds a batch-norm layer over ch channels with γ=1, β=0,
// running mean 0 and running variance 1.
func NewBatchNorm(ch int) *BatchNorm {
	return &BatchNorm{
		Gamma:       ag.Param(tensor.New(ch).Fill(1)),
		Beta:        ag.Param(tensor.New(ch)),
		RunningMean: tensor.New(ch),
		RunningVar:  tensor.New(ch).Fill(1),
		Momentum:    0.1,
		Eps:         1e-5,
		training:    true,
	}
}

// Forward normalizes x with batch statistics (training) or running
// statistics (eval).
func (l *BatchNorm) Forward(x *ag.Value) *ag.Value {
	return ag.BatchNorm(x, l.Gamma, l.Beta, l.RunningMean, l.RunningVar,
		l.training, l.Momentum, l.Eps)
}

// Params returns γ and β.
func (l *BatchNorm) Params() []*ag.Value { return []*ag.Value{l.Gamma, l.Beta} }

// SetTraining selects batch versus running statistics. The write is
// skipped when the mode is unchanged, so once a network is in eval mode
// (core.Pipeline.Warm) repeated SetTraining(false) calls from concurrent
// inference paths are pure reads and race-free.
func (l *BatchNorm) SetTraining(train bool) {
	if l.training != train {
		l.training = train
	}
}

func (l *BatchNorm) stateTensors() []*tensor.Tensor {
	return []*tensor.Tensor{l.RunningMean, l.RunningVar}
}

// Linear is a trainable fully connected layer.
type Linear struct {
	W, B *ag.Value
}

// NewLinear builds a fully connected layer with Gaussian-initialized
// weights of shape (out, in) and zero bias.
func NewLinear(rng *rand.Rand, in, out int, std float64) *Linear {
	if std <= 0 {
		std = 0.01
	}
	w := tensor.New(out, in)
	GaussianInit(w, rng, 0, std)
	return &Linear{W: ag.Param(w), B: ag.Param(tensor.New(out))}
}

// Forward applies x·Wᵀ + b.
func (l *Linear) Forward(x *ag.Value) *ag.Value { return ag.Linear(x, l.W, l.B) }

// Params returns the weight and bias.
func (l *Linear) Params() []*ag.Value { return []*ag.Value{l.W, l.B} }

// SetTraining is a no-op for linear layers.
func (l *Linear) SetTraining(bool) {}
