package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024, 1025: 2048}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Errorf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestFFTKnownValues(t *testing.T) {
	// DFT of [1,0,0,0] is all ones.
	x := []complex128{1, 0, 0, 0}
	FFT(x)
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("FFT(delta)[%d] = %v, want 1", i, v)
		}
	}
	// DFT of a constant is a delta at DC.
	y := []complex128{2, 2, 2, 2}
	FFT(y)
	if cmplx.Abs(y[0]-8) > 1e-12 {
		t.Fatalf("FFT(const)[0] = %v, want 8", y[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(y[i]) > 1e-12 {
			t.Fatalf("FFT(const)[%d] = %v, want 0", i, y[i])
		}
	}
}

func TestFFTMatchesNaiveDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 16
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			ang := -2 * math.Pi * float64(k*j) / float64(n)
			want[k] += x[j] * cmplx.Exp(complex(0, ang))
		}
	}
	got := append([]complex128(nil), x...)
	FFT(got)
	for k := range want {
		if cmplx.Abs(got[k]-want[k]) > 1e-9 {
			t.Fatalf("FFT[%d] = %v, naive DFT = %v", k, got[k], want[k])
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, sizeExp uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (sizeExp%8 + 1)
		x := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		y := append([]complex128(nil), x...)
		FFT(y)
		IFFT(y)
		for i := range x {
			if cmplx.Abs(y[i]-x[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestParseval(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 64
	x := make([]complex128, n)
	timeEnergy := 0.0
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
		timeEnergy += real(x[i] * cmplx.Conj(x[i]))
	}
	FFT(x)
	freqEnergy := 0.0
	for _, v := range x {
		freqEnergy += real(v * cmplx.Conj(v))
	}
	if math.Abs(timeEnergy-freqEnergy/float64(n)) > 1e-9 {
		t.Fatalf("Parseval violated: time %v, freq/N %v", timeEnergy, freqEnergy/float64(n))
	}
}

func TestNonPow2Panics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two length")
		}
	}()
	FFT(make([]complex128, 12))
}

func TestConvolveMatchesDirect(t *testing.T) {
	a := []float64{1, 2, 3}
	b := []float64{4, 5}
	got := Convolve(a, b)
	want := []float64{4, 13, 22, 15}
	if len(got) != len(want) {
		t.Fatalf("Convolve length = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("Convolve[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestConvolveEmpty(t *testing.T) {
	if Convolve(nil, []float64{1}) != nil {
		t.Fatal("Convolve with empty input should return nil")
	}
}

func BenchmarkFFT1024(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%17), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y := append([]complex128(nil), x...)
		FFT(y)
	}
}
