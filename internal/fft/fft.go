// Package fft provides a radix-2 iterative fast Fourier transform used
// by the CT reconstruction stack (internal/ctsim) to apply the ramp
// filter of filtered back projection in the frequency domain.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// NextPow2 returns the smallest power of two >= n (and at least 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// FFT computes the in-place forward discrete Fourier transform of x,
// whose length must be a power of two:
//
//	X[k] = Σ_n x[n]·e^{-2πi·kn/N}
func FFT(x []complex128) {
	transform(x, false)
}

// IFFT computes the in-place inverse DFT of x (including the 1/N
// normalization), whose length must be a power of two.
func IFFT(x []complex128) {
	transform(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

func transform(x []complex128, inverse bool) {
	n := len(x)
	if !IsPow2(n) {
		panic(fmt.Sprintf("fft: length %d is not a power of two", n))
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Cooley–Tukey butterflies.
	for size := 2; size <= n; size <<= 1 {
		ang := 2 * math.Pi / float64(size)
		if !inverse {
			ang = -ang
		}
		wStep := complex(math.Cos(ang), math.Sin(ang))
		half := size / 2
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// Convolve returns the linear convolution of a and b (length
// len(a)+len(b)-1) computed via zero-padded FFTs. It is used to validate
// the spatial-domain ramp filter against the frequency-domain one.
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	n := NextPow2(outLen)
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	FFT(fa)
	FFT(fb)
	for i := range fa {
		fa[i] *= fb[i]
	}
	IFFT(fa)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}
