package core

import (
	"math/rand"
	"testing"

	"computecovid19/internal/classify"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/metrics"
)

func smallCohort(t *testing.T, count int, seed int64) []dataset.Case {
	t.Helper()
	cfg := dataset.DefaultCohortConfig()
	cfg.Count = count
	cfg.Size = 32
	cfg.Depth = 8
	cfg.Seed = seed
	return dataset.BuildCohort(cfg)
}

func TestDiagnoseEndToEnd(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cls := classify.New(rng, classify.SmallConfig())
	p := NewPipeline(nil, cls)
	cases := smallCohort(t, 2, 3)
	r := p.Diagnose(cases[0].Volume)
	if r.Probability < 0 || r.Probability > 1 {
		t.Fatalf("probability = %v", r.Probability)
	}
	if len(r.LungMask) != cases[0].Volume.D*32*32 {
		t.Fatalf("mask length %d", len(r.LungMask))
	}
	if r.Enhanced != cases[0].Volume {
		t.Fatal("without enhancer, Enhanced should be the input volume")
	}
	if r.Positive != (r.Probability >= p.Threshold) {
		t.Fatal("Positive flag inconsistent with threshold")
	}
}

func TestEnhanceChangesVolume(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	enh := ddnet.New(rng, ddnet.TinyConfig())
	cls := classify.New(rng, classify.SmallConfig())
	p := NewPipeline(enh, cls)
	cases := smallCohort(t, 1, 4)
	out := p.Enhance(cases[0].Volume)
	if out == cases[0].Volume {
		t.Fatal("enhancement should produce a new volume")
	}
	if out.D != cases[0].Volume.D || out.H != 32 {
		t.Fatalf("enhanced shape %dx%dx%d", out.D, out.H, out.W)
	}
}

func TestTrainEnhancerReducesLoss(t *testing.T) {
	cfg := dataset.DefaultEnhancementConfig()
	cfg.Count = 6
	cfg.Size = 32
	cfg.Views = 90
	cfg.Detectors = 64
	pairs := dataset.BuildEnhancement(cfg)
	rng := rand.New(rand.NewSource(5))
	m := ddnet.New(rng, ddnet.TinyConfig())
	tc := DefaultEnhancerTraining()
	tc.Epochs = 5
	curve := TrainEnhancer(m, pairs, tc)
	if len(curve) != 5 {
		t.Fatalf("curve has %d epochs", len(curve))
	}
	if curve[len(curve)-1] >= curve[0] {
		t.Fatalf("training loss did not decrease: %v", curve)
	}
}

func TestEvaluateEnhancerTable8Shape(t *testing.T) {
	cfg := dataset.DefaultEnhancementConfig()
	cfg.Count = 10
	cfg.Size = 32
	cfg.Views = 90
	cfg.Detectors = 64
	cfg.DoseDivisor = 128 // strongly degraded input so the win is clear
	pairs := dataset.BuildEnhancement(cfg)
	train, _, test := dataset.Split(pairs, 0.8, 0)

	rng := rand.New(rand.NewSource(6))
	m := ddnet.New(rng, ddnet.TinyConfig())
	tc := DefaultEnhancerTraining()
	tc.Epochs = 20
	TrainEnhancer(m, train, tc)

	mseYX, _, mseYFX, _ := EvaluateEnhancer(m, test)
	// Table 8's key relationship: enhancement reduces MSE versus the
	// low-dose input.
	if mseYFX >= mseYX {
		t.Fatalf("enhancement did not reduce MSE: Y-X %v, Y-f(X) %v", mseYX, mseYFX)
	}
}

func TestTrainClassifierLearnsCohort(t *testing.T) {
	cases := smallCohort(t, 16, 7)
	rng := rand.New(rand.NewSource(8))
	cls := classify.New(rng, classify.SmallConfig())
	tc := DefaultClassifierTraining()
	tc.Epochs = 14
	tc.LR = 5e-3
	tc.Augment = false
	curve := TrainClassifier(cls, cases, tc)
	if curve[len(curve)-1] >= curve[0] {
		t.Fatalf("classifier loss did not decrease: %v", curve)
	}

	p := NewPipeline(nil, cls)
	probs, labels := p.Score(cases)
	if auc := metrics.AUC(probs, labels); auc < 0.7 {
		t.Fatalf("training-set AUC = %v, want > 0.7", auc)
	}
}

func TestEvaluateCohortConsistency(t *testing.T) {
	cases := smallCohort(t, 12, 9)
	rng := rand.New(rand.NewSource(10))
	cls := classify.New(rng, classify.SmallConfig())
	p := NewPipeline(nil, cls)
	ev := EvaluateCohort(p, cases)
	if ev.Accuracy < 0 || ev.Accuracy > 1 || ev.AUC < 0 || ev.AUC > 1 {
		t.Fatalf("out-of-range metrics: %+v", ev)
	}
	total := ev.Confusion.TP + ev.Confusion.FP + ev.Confusion.FN + ev.Confusion.TN
	if total != len(cases) {
		t.Fatalf("confusion covers %d cases, want %d", total, len(cases))
	}
	if len(ev.ROC) < 2 {
		t.Fatal("ROC curve too short")
	}
}

func TestPaperEnhancerTrainingLiteral(t *testing.T) {
	tc := PaperEnhancerTraining()
	if tc.Epochs != 50 || tc.LR != 1e-4 || tc.LRDecay != 0.8 || tc.BatchSize != 1 {
		t.Fatalf("paper hyper-parameters drifted: %+v", tc)
	}
}
