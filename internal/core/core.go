// Package core assembles the ComputeCOVID19+ framework of Figure 3: the
// green-arrow workflow Enhancement AI → Segmentation AI → Classification
// AI over a 3D chest CT volume, plus the training loops for the two
// learned stages. This is the orchestration layer a clinician-facing
// deployment would call.
package core

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"computecovid19/internal/ag"
	"computecovid19/internal/classify"
	"computecovid19/internal/ctsim"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/memplan"
	"computecovid19/internal/metrics"
	"computecovid19/internal/nn"
	"computecovid19/internal/obs"
	"computecovid19/internal/segment"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

// Telemetry: per-scan latency (the number a clinician-facing deployment
// watches) and per-stage latencies for the enhance → segment → classify
// split of Figure 4. Metric handles are atomics; span collection costs
// ~3 ns per site while disabled (see internal/obs).
var (
	scanSeconds          = obs.GetHistogram("pipeline_scan_seconds", nil)
	scansTotal           = obs.GetCounter("pipeline_scans_total")
	stageEnhanceSeconds  = stageHistogram("enhance")
	stageSegmentSeconds  = stageHistogram("segment")
	stageClassifySeconds = stageHistogram("classify")
	trainStepSeconds     = obs.GetHistogram("train_step_seconds", nil)
	trainStepLoss        = obs.GetGauge("train_step_loss")
)

// stageHistogram returns the per-stage latency histogram. All three
// stages share the pipeline_stage_seconds metric family, distinguished
// only by the stage label.
func stageHistogram(stage string) *obs.Histogram {
	return obs.GetHistogram(`pipeline_stage_seconds{stage="`+stage+`"}`, nil)
}

// Pipeline is a configured ComputeCOVID19+ instance.
type Pipeline struct {
	// Enhancer is Enhancement AI; nil skips enhancement (the grey-arrow
	// ablation path of Figure 13).
	Enhancer *ddnet.DDnet
	// SegOpts configures Segmentation AI.
	SegOpts segment.Options
	// Classifier is Classification AI.
	Classifier *classify.Classifier
	// Threshold is the probability cutoff for a positive call (the
	// paper's Table 9 uses 0.061, chosen on validation data).
	Threshold float64
	// WindowLo and WindowHi are the HU normalization window.
	WindowLo, WindowHi float64

	// Pooled inference memory (see internal/memplan): the tensor arena
	// shared by every stage, a free list of per-scan scratch bundles,
	// and a free list of output volumes fed by RecycleVolume. All three
	// are lazy; the zero value works.
	memOnce   sync.Once
	mem       *memplan.Arena
	scratchMu sync.Mutex
	scratch   []*scanScratch
	volMu     sync.Mutex
	vols      []*volume.Volume
}

// Arena returns the pipeline's tensor arena, creating it on first use.
// Every pooled buffer the pipeline hands out (Result.LungMask included)
// belongs to this arena.
func (p *Pipeline) Arena() *memplan.Arena {
	p.memOnce.Do(func() { p.mem = memplan.New() })
	return p.mem
}

// NewPipeline returns a pipeline with default segmentation options, the
// full HU window, and threshold 0.5.
func NewPipeline(enh *ddnet.DDnet, cls *classify.Classifier) *Pipeline {
	return &Pipeline{
		Enhancer:   enh,
		SegOpts:    segment.DefaultOptions(),
		Classifier: cls,
		Threshold:  0.5,
		WindowLo:   ctsim.FullWindowLo,
		WindowHi:   ctsim.FullWindowHi,
	}
}

// Result is the outcome of running the pipeline on one scan.
type Result struct {
	// Probability is Classification AI's COVID-positive probability.
	Probability float64
	// Positive applies the pipeline threshold.
	Positive bool
	// Enhanced is the post-Enhancement-AI volume in HU (the input volume
	// when enhancement is disabled).
	Enhanced *volume.Volume
	// LungMask is Segmentation AI's binary map.
	LungMask []bool
}

// Enhance runs Enhancement AI slice by slice over an HU volume and
// returns the enhanced HU volume. With no enhancer it returns the input
// unchanged.
func (p *Pipeline) Enhance(v *volume.Volume) *volume.Volume {
	return p.enhance(v, obs.Start("core/enhance"))
}

// EnhanceCtx is Enhance continuing the context's trace.
func (p *Pipeline) EnhanceCtx(ctx context.Context, v *volume.Volume) *volume.Volume {
	_, sp := obs.StartCtx(ctx, "core/enhance")
	return p.enhance(v, sp)
}

// enhance is Enhance under a caller-provided span (nil = untraced).
func (p *Pipeline) enhance(v *volume.Volume, sp *obs.Span) *volume.Volume {
	start := time.Now()
	defer func() {
		stageEnhanceSeconds.Observe(time.Since(start).Seconds())
		sp.End()
	}()
	sp.SetAttr("slices", v.D)
	if p.Enhancer == nil {
		return v
	}
	// The forward passes run against the pipeline arena but root their
	// own traces, exactly as the pre-pooled per-slice Enhance calls did;
	// EnhanceInto is the variant that threads the caller's trace through.
	out := p.GetVolume(v.D, v.H, v.W)
	p.enhanceSlices(context.Background(), v, out)
	return out
}

// Diagnose runs the full workflow of Figure 4 on an HU volume:
// enhancement, lung segmentation, masking, classification.
func (p *Pipeline) Diagnose(v *volume.Volume) Result {
	return p.DiagnoseCtx(context.Background(), v)
}

// DiagnoseCtx is Diagnose continuing the context's trace: the
// core/diagnose span (and the stage spans under it) nests under the
// caller's active span instead of rooting a fresh trace.
func (p *Pipeline) DiagnoseCtx(ctx context.Context, v *volume.Volume) Result {
	_, sp := obs.StartCtx(ctx, "core/diagnose")
	start := time.Now()

	enhanced := p.enhance(v, sp.Child("core/enhance"))
	r := p.classifyEnhanced(enhanced, sp)

	scanSeconds.Observe(time.Since(start).Seconds())
	scansTotal.Inc()
	sp.End()
	return r
}

// Classify runs the tail of Diagnose — segmentation, masking,
// classification — on an already-enhanced HU volume. It exists for
// serving paths that enhance volumes out of band (internal/serve batches
// enhancement across concurrent scans) and counts as a completed scan in
// the pipeline metrics. On a warm pipeline (see Warm) it is safe for
// concurrent use.
func (p *Pipeline) Classify(enhanced *volume.Volume) Result {
	return p.ClassifyCtx(context.Background(), enhanced)
}

// ClassifyCtx is Classify continuing the context's trace, so a serving
// request's trace covers segmentation and classification.
func (p *Pipeline) ClassifyCtx(ctx context.Context, enhanced *volume.Volume) Result {
	_, sp := obs.StartCtx(ctx, "core/diagnose")
	start := time.Now()
	r := p.classifyEnhanced(enhanced, sp)
	scanSeconds.Observe(time.Since(start).Seconds())
	scansTotal.Inc()
	sp.End()
	return r
}

// classifyEnhanced is the shared segmentation + classification tail. It
// runs entirely from pooled memory — the lung mask comes from the
// pipeline arena (hand it back with RecycleResult) and the masked,
// windowed classifier input lives in reusable scan scratch — and is
// bit-identical to segment.Apply + Volume.Normalized + Predict (pinned
// by TestClassifyPooledBitIdentical).
func (p *Pipeline) classifyEnhanced(enhanced *volume.Volume, sp *obs.Span) Result {
	s := p.getScratch()

	segSp := sp.Child("core/segment")
	segStart := time.Now()
	mask := p.Arena().GetBools(len(enhanced.Data))
	s.seg.LungsInto(enhanced, p.SegOpts, mask)
	stageSegmentSeconds.Observe(time.Since(segStart).Seconds())
	segSp.End()

	clsSp := sp.Child("core/classify")
	clsStart := time.Now()
	s.ensureVolume(enhanced.D, enhanced.H, enhanced.W)
	// Fused mask + window: ApplyMask zeroes non-lung voxels before
	// Normalized windows them, so a masked-out voxel windows to the
	// constant NormalizeHU(0).
	maskedOut := float32(ctsim.NormalizeHU(0, p.WindowLo, p.WindowHi))
	norm := s.norm.Data
	for i, hu := range enhanced.Data {
		if mask[i] {
			norm[i] = float32(ctsim.NormalizeHU(float64(hu), p.WindowLo, p.WindowHi))
		} else {
			norm[i] = maskedOut
		}
	}
	prob := p.Classifier.PredictPooled(p.Arena(), s.norm)
	stageClassifySeconds.Observe(time.Since(clsStart).Seconds())
	clsSp.End()

	p.putScratch(s)
	return Result{
		Probability: prob,
		Positive:    prob >= p.Threshold,
		Enhanced:    enhanced,
		LungMask:    mask,
	}
}

// Warm prepares the pipeline for concurrent inference: both learned
// stages are switched to eval mode once, up front, so hot-path calls
// (Enhance, Classify, Diagnose, Predict) perform no writes to shared
// model state. nn.BatchNorm.SetTraining skips redundant writes, so after
// Warm the per-call SetTraining(false) in ddnet.Enhance and
// classify.Predict is a pure read — worker pools may share one set of
// weights without racing. Warming the enhancer also compiles its fused
// execution plan (BN folding, weight packing — ddnet.Warm), so the
// epilogue-fused forward is what concurrent callers run. Serving
// replicas must call Warm before going concurrent.
func (p *Pipeline) Warm() {
	if p.Enhancer != nil {
		p.Enhancer.Warm()
	}
	if p.Classifier != nil {
		p.Classifier.SetTraining(false)
	}
}

// Score runs Diagnose over a cohort and returns probabilities and
// labels, ready for metrics.ROC / metrics.AUC.
func (p *Pipeline) Score(cases []dataset.Case) (probs []float64, labels []bool) {
	for _, c := range cases {
		r := p.Diagnose(c.Volume)
		probs = append(probs, r.Probability)
		labels = append(labels, c.Label)
	}
	return
}

// EnhancerTrainingConfig configures TrainEnhancer with the paper's
// §3.1.1 hyper-parameters as defaults (Adam, lr 1e-4 decayed ×0.8 per
// epoch, batch 1, composite MSE + 0.1(1−MS-SSIM) loss).
type EnhancerTrainingConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	LRDecay   float64
	Seed      int64
}

// DefaultEnhancerTraining returns settings scaled for demo-size images
// and epoch counts: a larger learning rate and slower decay than the
// paper's full-scale 1e-4 / 0.8 (PaperEnhancerTraining), which assume
// 5102 images per epoch rather than a handful.
func DefaultEnhancerTraining() EnhancerTrainingConfig {
	return EnhancerTrainingConfig{Epochs: 8, BatchSize: 1, LR: 3e-3, LRDecay: 0.95, Seed: 7}
}

// PaperEnhancerTraining returns the literal §3.1.1 hyper-parameters:
// Adam at 1e-4 decayed ×0.8 per epoch, batch 1, 50 epochs.
func PaperEnhancerTraining() EnhancerTrainingConfig {
	return EnhancerTrainingConfig{Epochs: 50, BatchSize: 1, LR: 1e-4, LRDecay: 0.8, Seed: 7}
}

// TrainEnhancer trains a DDnet on clean/low-dose pairs and returns the
// per-epoch mean training loss (Figure 11a's curve).
func TrainEnhancer(m *ddnet.DDnet, pairs []dataset.EnhancementPair, cfg EnhancerTrainingConfig) []float64 {
	tsp := obs.Start("core/train_enhancer")
	tsp.SetAttr("epochs", cfg.Epochs)
	tsp.SetAttr("pairs", len(pairs))
	defer tsp.End()
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(m.Params(), cfg.LR)
	sched := nn.NewExponentialLR(opt, cfg.LRDecay)
	m.SetTraining(true)

	size := pairs[0].Clean.Shape[0]
	var curve []float64
	order := make([]int, len(pairs))
	for i := range order {
		order[i] = i
	}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		steps := 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			b := end - start
			x := tensor.New(b, 1, size, size)
			y := tensor.New(b, 1, size, size)
			for bi, idx := range order[start:end] {
				copy(x.Data[bi*size*size:(bi+1)*size*size], pairs[idx].LowDose.Data)
				copy(y.Data[bi*size*size:(bi+1)*size*size], pairs[idx].Clean.Data)
			}
			stepStart := time.Now()
			opt.ZeroGrad()
			loss := ddnet.Loss(m.Forward(ag.Const(x)), ag.Const(y))
			loss.Backward()
			opt.Step()
			trainStepSeconds.Observe(time.Since(stepStart).Seconds())
			trainStepLoss.Set(float64(loss.Scalar()))
			epochLoss += float64(loss.Scalar())
			steps++
		}
		curve = append(curve, epochLoss/float64(steps))
		sched.StepEpoch()
	}
	m.SetTraining(false)
	return curve
}

// EvaluateEnhancer computes the paper's Table 8 numbers over pairs:
// MSE and MS-SSIM of (Y, X) — target vs low-dose — and of (Y, f(X)) —
// target vs enhanced.
func EvaluateEnhancer(m *ddnet.DDnet, pairs []dataset.EnhancementPair) (mseYX, msssimYX, mseYFX, msssimYFX float64) {
	m.SetTraining(false)
	n := float64(len(pairs))
	for _, p := range pairs {
		enh := m.Enhance(p.LowDose)
		mseYX += metrics.MSE(p.Clean, p.LowDose) / n
		mseYFX += metrics.MSE(p.Clean, enh) / n
		msssimYX += metrics.MSSSIM(p.Clean, p.LowDose) / n
		msssimYFX += metrics.MSSSIM(p.Clean, enh) / n
	}
	return
}

// ClassifierTrainingConfig configures TrainClassifier. The paper uses
// Adam with lr 1e-6 on full-size volumes (§3.3.1); small synthetic
// volumes tolerate a larger rate.
type ClassifierTrainingConfig struct {
	Epochs    int
	BatchSize int
	LR        float64
	Augment   bool
	Seed      int64
	// PreEnhance runs each training volume through this pipeline's
	// enhancement + segmentation before training, matching how the
	// volume will be presented at inference.
	PreEnhance *Pipeline
}

// DefaultClassifierTraining returns demo-scale settings.
func DefaultClassifierTraining() ClassifierTrainingConfig {
	return ClassifierTrainingConfig{Epochs: 6, BatchSize: 4, LR: 3e-3, Augment: true, Seed: 8}
}

// PrepareClassifierInput converts a raw HU case volume into the tensor
// the classifier consumes, optionally routing it through enhancement and
// segmentation.
func PrepareClassifierInput(p *Pipeline, v *volume.Volume) *tensor.Tensor {
	work := v
	var opts segment.Options
	if p != nil {
		work = p.Enhance(v)
		opts = p.SegOpts
	} else {
		opts = segment.DefaultOptions()
	}
	masked, _ := segment.Apply(work, opts)
	norm := masked.Normalized(ctsim.FullWindowLo, ctsim.FullWindowHi)
	return tensor.FromSlice(norm.Data, 1, 1, v.D, v.H, v.W)
}

// TrainClassifier trains the classifier on a cohort and returns the
// per-epoch mean loss (Figure 11b's curve).
func TrainClassifier(c *classify.Classifier, cases []dataset.Case, cfg ClassifierTrainingConfig) []float64 {
	tsp := obs.Start("core/train_classifier")
	tsp.SetAttr("epochs", cfg.Epochs)
	tsp.SetAttr("cases", len(cases))
	defer tsp.End()
	rng := rand.New(rand.NewSource(cfg.Seed))
	opt := nn.NewAdam(c.Params(), cfg.LR)
	c.SetTraining(true)

	// Pre-compute pipeline inputs once.
	inputs := make([]*tensor.Tensor, len(cases))
	for i, cs := range cases {
		inputs[i] = PrepareClassifierInput(cfg.PreEnhance, cs.Volume)
	}

	d, h, w := cases[0].Volume.D, cases[0].Volume.H, cases[0].Volume.W
	voxels := d * h * w
	order := make([]int, len(cases))
	for i := range order {
		order[i] = i
	}
	var curve []float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		steps := 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			b := end - start
			x := tensor.New(b, 1, d, h, w)
			y := tensor.New(b, 1)
			for bi, idx := range order[start:end] {
				in := inputs[idx]
				if cfg.Augment {
					in = classify.Augment(rng, in)
				}
				copy(x.Data[bi*voxels:(bi+1)*voxels], in.Data)
				if cases[idx].Label {
					y.Data[bi] = 1
				}
			}
			stepStart := time.Now()
			opt.ZeroGrad()
			loss := classify.Loss(c.Forward(ag.Const(x)), ag.Const(y))
			loss.Backward()
			opt.Step()
			trainStepSeconds.Observe(time.Since(stepStart).Seconds())
			trainStepLoss.Set(float64(loss.Scalar()))
			epochLoss += float64(loss.Scalar())
			steps++
		}
		curve = append(curve, epochLoss/float64(steps))
	}

	// Batch-norm recalibration: at demo scale the handful of training
	// steps leaves the running statistics far from the feature
	// distribution, collapsing eval-mode outputs. Stream the training
	// inputs through the network in training mode (forward only) until
	// the exponential moving averages converge.
	for pass := 0; pass < 8; pass++ {
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			b := end - start
			x := tensor.New(b, 1, d, h, w)
			for bi, idx := range order[start:end] {
				copy(x.Data[bi*voxels:(bi+1)*voxels], inputs[idx].Data)
			}
			c.Forward(ag.Const(x))
		}
	}
	c.SetTraining(false)
	return curve
}

// Evaluation is the accuracy bundle of Figure 13 / Table 9.
type Evaluation struct {
	Accuracy  float64
	AUC       float64
	Confusion metrics.Confusion
	Threshold float64
	ROC       []metrics.ROCPoint
}

// EvaluateCohort scores a cohort and computes accuracy at the best
// (Youden) threshold, AUC, and the confusion matrix.
func EvaluateCohort(p *Pipeline, cases []dataset.Case) Evaluation {
	probs, labels := p.Score(cases)
	th := metrics.BestThreshold(probs, labels)
	conf := metrics.Confuse(probs, labels, th)
	return Evaluation{
		Accuracy:  conf.Accuracy(),
		AUC:       metrics.AUC(probs, labels),
		Confusion: conf,
		Threshold: th,
		ROC:       metrics.ROC(probs, labels),
	}
}
