package core

import (
	"math/rand"

	"computecovid19/internal/ag"
	"computecovid19/internal/classify"
	"computecovid19/internal/dataset"
	"computecovid19/internal/distrib"
	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
)

// TrainClassifierDDP trains Classification AI with internal/distrib's
// synchronous data-parallel trainer (§4.1): nodes replicas shard each
// global batch, gradients are ring-all-reduced, and identical Adam
// steps keep the replicas in lockstep. factory must be deterministic
// (fixed seed inside) so every replica starts identical. Returns the
// master replica, recalibrated and in eval mode, plus the per-epoch
// mean loss curve.
//
// Telemetry: every step reports through internal/distrib
// (distrib_step_loss, distrib_grad_norm, distrib_allreduce_bytes_total
// — the live counterpart of Table 3's communication volume).
func TrainClassifierDDP(factory func() *classify.Classifier, cases []dataset.Case, cfg ClassifierTrainingConfig, nodes int) (*classify.Classifier, []float64) {
	tsp := obs.Start("core/train_classifier_ddp")
	tsp.SetAttr("epochs", cfg.Epochs)
	tsp.SetAttr("nodes", nodes)
	tsp.SetAttr("cases", len(cases))
	defer tsp.End()

	rng := rand.New(rand.NewSource(cfg.Seed))

	// Pre-compute pipeline inputs once, exactly as TrainClassifier does.
	inputs := make([]*tensor.Tensor, len(cases))
	for i, cs := range cases {
		inputs[i] = PrepareClassifierInput(cfg.PreEnhance, cs.Volume)
	}
	d, h, w := cases[0].Volume.D, cases[0].Volume.H, cases[0].Volume.W
	voxels := d * h * w

	lossFn := func(m distrib.Model, xs, ys []*tensor.Tensor) *ag.Value {
		c := m.(*classify.Classifier)
		b := len(xs)
		x := tensor.New(b, 1, d, h, w)
		y := tensor.New(b, 1)
		for i := range xs {
			copy(x.Data[i*voxels:(i+1)*voxels], xs[i].Data)
			y.Data[i] = ys[i].Data[0]
		}
		return classify.Loss(c.Forward(ag.Const(x)), ag.Const(y))
	}
	tr := distrib.NewTrainer(func() distrib.Model { return factory() }, nodes, cfg.LR, lossFn)

	order := make([]int, len(cases))
	for i := range order {
		order[i] = i
	}
	var curve []float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		steps := 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			xs := make([]*tensor.Tensor, 0, end-start)
			ys := make([]*tensor.Tensor, 0, end-start)
			for _, idx := range order[start:end] {
				in := inputs[idx]
				if cfg.Augment {
					in = classify.Augment(rng, in)
				}
				label := float32(0)
				if cases[idx].Label {
					label = 1
				}
				xs = append(xs, in)
				ys = append(ys, tensor.FromSlice([]float32{label}, 1))
			}
			epochLoss += tr.Step(xs, ys)
			steps++
		}
		curve = append(curve, epochLoss/float64(steps))
	}

	// Batch-norm recalibration on the master replica: DDP replicas each
	// accumulate running statistics from their own shard, so after
	// training we stream the full input set through the master in
	// training mode until its moving averages reflect the whole
	// distribution (same fix TrainClassifier applies at demo scale).
	master := tr.Master().(*classify.Classifier)
	for pass := 0; pass < 8; pass++ {
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			b := end - start
			x := tensor.New(b, 1, d, h, w)
			for bi, idx := range order[start:end] {
				copy(x.Data[bi*voxels:(bi+1)*voxels], inputs[idx].Data)
			}
			master.Forward(ag.Const(x))
		}
	}
	master.SetTraining(false)
	return master, curve
}
