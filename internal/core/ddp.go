package core

import (
	"math/rand"

	"computecovid19/internal/ag"
	"computecovid19/internal/classify"
	"computecovid19/internal/dataset"
	"computecovid19/internal/distrib"
	"computecovid19/internal/obs"
	"computecovid19/internal/tensor"
)

// TrainClassifierDDP trains Classification AI with internal/distrib's
// synchronous data-parallel trainer (§4.1): nodes replicas shard each
// global batch, gradients are ring-all-reduced, and identical Adam
// steps keep the replicas in lockstep. factory must be deterministic
// (fixed seed inside) so every replica starts identical. Returns the
// master replica, recalibrated and in eval mode, plus the per-epoch
// mean loss curve.
//
// Telemetry: every step reports through internal/distrib
// (distrib_step_loss, distrib_grad_norm, distrib_allreduce_bytes_total
// — the live counterpart of Table 3's communication volume).
func TrainClassifierDDP(factory func() *classify.Classifier, cases []dataset.Case, cfg ClassifierTrainingConfig, nodes int) (*classify.Classifier, []float64) {
	tsp := obs.Start("core/train_classifier_ddp")
	tsp.SetAttr("epochs", cfg.Epochs)
	tsp.SetAttr("nodes", nodes)
	tsp.SetAttr("cases", len(cases))
	defer tsp.End()

	rng := rand.New(rand.NewSource(cfg.Seed))

	// Pre-compute pipeline inputs once, exactly as TrainClassifier does.
	inputs := make([]*tensor.Tensor, len(cases))
	for i, cs := range cases {
		inputs[i] = PrepareClassifierInput(cfg.PreEnhance, cs.Volume)
	}
	d, h, w := cases[0].Volume.D, cases[0].Volume.H, cases[0].Volume.W
	voxels := d * h * w

	lossFn := func(m distrib.Model, xs, ys []*tensor.Tensor) *ag.Value {
		c := m.(*classify.Classifier)
		b := len(xs)
		x := tensor.New(b, 1, d, h, w)
		y := tensor.New(b, 1)
		for i := range xs {
			copy(x.Data[i*voxels:(i+1)*voxels], xs[i].Data)
			y.Data[i] = ys[i].Data[0]
		}
		return classify.Loss(c.Forward(ag.Const(x)), ag.Const(y))
	}
	tr := distrib.NewTrainer(func() distrib.Model { return factory() }, nodes, cfg.LR, lossFn)

	order := make([]int, len(cases))
	for i := range order {
		order[i] = i
	}
	var curve []float64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		epochLoss := 0.0
		steps := 0
		for start := 0; start < len(order); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > len(order) {
				end = len(order)
			}
			xs := make([]*tensor.Tensor, 0, end-start)
			ys := make([]*tensor.Tensor, 0, end-start)
			for _, idx := range order[start:end] {
				in := inputs[idx]
				if cfg.Augment {
					in = classify.Augment(rng, in)
				}
				label := float32(0)
				if cases[idx].Label {
					label = 1
				}
				xs = append(xs, in)
				ys = append(ys, tensor.FromSlice([]float32{label}, 1))
			}
			epochLoss += tr.Step(xs, ys)
			steps++
		}
		curve = append(curve, epochLoss/float64(steps))
	}

	// Batch-norm recalibration on the master replica: DDP replicas each
	// accumulate running statistics from their own shard, so after
	// training we stream the full input set through the master in
	// training mode until its moving averages reflect the whole
	// distribution (same fix TrainClassifier applies at demo scale).
	master := tr.Master().(*classify.Classifier)
	recalibrateBN(master, inputs, cfg.BatchSize, d, h, w)
	return master, curve
}

// recalibrateBN streams the full input set through the classifier in
// training mode until its batch-norm moving averages reflect the whole
// distribution, then switches it to eval mode.
func recalibrateBN(master *classify.Classifier, inputs []*tensor.Tensor, batch, d, h, w int) {
	master.SetTraining(true)
	voxels := d * h * w
	for pass := 0; pass < 8; pass++ {
		for start := 0; start < len(inputs); start += batch {
			end := start + batch
			if end > len(inputs) {
				end = len(inputs)
			}
			b := end - start
			x := tensor.New(b, 1, d, h, w)
			for bi := 0; bi < b; bi++ {
				copy(x.Data[bi*voxels:(bi+1)*voxels], inputs[start+bi].Data)
			}
			master.Forward(ag.Const(x))
		}
	}
	master.SetTraining(false)
}

// DDPFaultConfig extends ClassifierTrainingConfig with the fault
// tolerance knobs of the elastic trainer: where checkpoints live, how
// often they are cut, how many are retained, and the resilient-ring
// transport options.
type DDPFaultConfig struct {
	// CheckpointDir enables checkpointing when non-empty.
	CheckpointDir string
	// CheckpointEvery is the snapshot period in optimizer steps
	// (0 = distrib's default).
	CheckpointEvery int
	// Keep bounds retained snapshots (0 = distrib.DefaultKeep, <0 = all).
	Keep int
	// Resume restores the latest checkpoint in CheckpointDir before
	// training; the resumed run is bit-identical to one that was never
	// interrupted.
	Resume bool
	// Ring configures collective timeouts, retries, and (in tests)
	// injected faults.
	Ring distrib.RingOptions
}

// TrainClassifierDDPElastic is TrainClassifierDDP with fault tolerance:
// periodic CRC-checked checkpoints, a checksummed timeout-guarded
// all-reduce, and elastic recovery — when a rank is confirmed dead the
// survivors re-form the group, the dataset re-shards, and training
// resumes from the last consistent checkpoint. The returned result
// carries the loss record and every recovery event.
func TrainClassifierDDPElastic(factory func() *classify.Classifier, cases []dataset.Case, cfg ClassifierTrainingConfig, nodes int, ft DDPFaultConfig) (*classify.Classifier, *distrib.ElasticResult, error) {
	tsp := obs.Start("core/train_classifier_ddp_elastic")
	tsp.SetAttr("epochs", cfg.Epochs)
	tsp.SetAttr("nodes", nodes)
	tsp.SetAttr("cases", len(cases))
	defer tsp.End()

	inputs := make([]*tensor.Tensor, len(cases))
	for i, cs := range cases {
		inputs[i] = PrepareClassifierInput(cfg.PreEnhance, cs.Volume)
	}
	d, h, w := cases[0].Volume.D, cases[0].Volume.H, cases[0].Volume.W
	voxels := d * h * w

	lossFn := func(m distrib.Model, xs, ys []*tensor.Tensor) *ag.Value {
		c := m.(*classify.Classifier)
		b := len(xs)
		x := tensor.New(b, 1, d, h, w)
		y := tensor.New(b, 1)
		for i := range xs {
			copy(x.Data[i*voxels:(i+1)*voxels], xs[i].Data)
			y.Data[i] = ys[i].Data[0]
		}
		return classify.Loss(c.Forward(ag.Const(x)), ag.Const(y))
	}
	tr := distrib.NewTrainer(func() distrib.Model { return factory() }, nodes, cfg.LR, lossFn)

	var cm *distrib.CheckpointManager
	if ft.CheckpointDir != "" {
		cm = &distrib.CheckpointManager{Dir: ft.CheckpointDir, Keep: ft.Keep}
	}
	ecfg := distrib.ElasticConfig{
		Epochs:    cfg.Epochs,
		Samples:   len(cases),
		BatchSize: cfg.BatchSize,
		Shuffle:   true,
		Seed:      cfg.Seed,
		MakeBatch: func(indices []int, rng *rand.Rand) ([]*tensor.Tensor, []*tensor.Tensor) {
			xs := make([]*tensor.Tensor, 0, len(indices))
			ys := make([]*tensor.Tensor, 0, len(indices))
			for _, idx := range indices {
				in := inputs[idx]
				if cfg.Augment {
					in = classify.Augment(rng, in)
				}
				label := float32(0)
				if cases[idx].Label {
					label = 1
				}
				xs = append(xs, in)
				ys = append(ys, tensor.FromSlice([]float32{label}, 1))
			}
			return xs, ys
		},
		Ckpt:            cm,
		CheckpointEvery: ft.CheckpointEvery,
		Resume:          ft.Resume,
		Ring:            ft.Ring,
	}
	res, err := tr.RunElastic(ecfg)
	if err != nil {
		return nil, res, err
	}

	master := tr.Master().(*classify.Classifier)
	recalibrateBN(master, inputs, cfg.BatchSize, d, h, w)
	return master, res, nil
}
