package core

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"computecovid19/internal/classify"
	"computecovid19/internal/ctsim"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/segment"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

// pooledTestVolume builds a small HU volume with a soft-tissue body and
// an air cavity so segmentation produces a non-trivial lung mask.
func pooledTestVolume(rng *rand.Rand, d, h, w int) *volume.Volume {
	v := volume.New(d, h, w)
	for i := range v.Data {
		v.Data[i] = 60 + 10*rng.Float32()
	}
	for z := 0; z < d; z++ {
		for y := h / 4; y < 3*h/4; y++ {
			for x := w / 4; x < 3*w/4; x++ {
				v.Data[z*h*w+y*w+x] = -800 + 30*rng.Float32()
			}
		}
	}
	return v
}

func pooledTestPipeline(seed int64) *Pipeline {
	rng := rand.New(rand.NewSource(seed))
	p := NewPipeline(ddnet.New(rng, ddnet.TinyConfig()), classify.New(rng, classify.SmallConfig()))
	p.Warm()
	return p
}

// refEnhance is the pre-pooled per-slice enhancement orchestration:
// fresh tensors, per-slice Enhance calls, fresh output volume.
func refEnhance(p *Pipeline, v *volume.Volume) *volume.Volume {
	out := volume.New(v.D, v.H, v.W)
	for z := 0; z < v.D; z++ {
		img := tensor.New(v.H, v.W)
		src := v.Slice(z)
		for i, hu := range src {
			img.Data[i] = float32(ctsim.NormalizeHU(float64(hu), p.WindowLo, p.WindowHi))
		}
		enh := p.Enhancer.Enhance(img)
		dst := out.Slice(z)
		for i, val := range enh.Data {
			dst[i] = float32(ctsim.DenormalizeHU(float64(val), p.WindowLo, p.WindowHi))
		}
	}
	return out
}

// refClassify is the pre-pooled segmentation + classification tail:
// segment.Apply, a masked clone, a windowed clone, graph Predict.
func refClassify(p *Pipeline, enhanced *volume.Volume) (float64, []bool) {
	masked, mask := segment.Apply(enhanced, p.SegOpts)
	return p.Classifier.Predict(masked.Normalized(p.WindowLo, p.WindowHi)), mask
}

func requireSameVolumeBits(t *testing.T, want, got *volume.Volume, label string) {
	t.Helper()
	if want.D != got.D || want.H != got.H || want.W != got.W {
		t.Fatalf("%s: dimensions differ", label)
	}
	for i := range want.Data {
		if math.Float32bits(want.Data[i]) != math.Float32bits(got.Data[i]) {
			t.Fatalf("%s: voxel %d: %08x != %08x", label, i,
				math.Float32bits(got.Data[i]), math.Float32bits(want.Data[i]))
		}
	}
}

// TestEnhanceVolumePooledBitIdentical pins the pooled enhancement
// orchestration (recycled volumes, staged slices, arena forward) to the
// pre-pooled per-slice path, cold, warm, into a caller volume, and with
// release poisoning on.
func TestEnhanceVolumePooledBitIdentical(t *testing.T) {
	p := pooledTestPipeline(21)
	v := pooledTestVolume(rand.New(rand.NewSource(22)), 2, 32, 32)
	want := refEnhance(p, v)

	got := p.Enhance(v)
	requireSameVolumeBits(t, want, got, "cold")
	p.RecycleVolume(got)

	got = p.Enhance(v) // reuses the recycled volume and warm arena
	requireSameVolumeBits(t, want, got, "warm")

	out := volume.New(v.D, v.H, v.W)
	p.EnhanceInto(context.Background(), v, out)
	requireSameVolumeBits(t, want, out, "EnhanceInto")

	prev := tensor.SetMemDebug(true)
	defer tensor.SetMemDebug(prev)
	p.EnhanceInto(context.Background(), v, out)
	requireSameVolumeBits(t, want, out, "memdebug")
}

// TestClassifyPooledBitIdentical pins the pooled segmentation +
// classification tail to the pre-pooled segment.Apply + Normalized +
// Predict composition: identical probability bits and identical mask.
func TestClassifyPooledBitIdentical(t *testing.T) {
	p := pooledTestPipeline(23)
	v := pooledTestVolume(rand.New(rand.NewSource(24)), 8, 32, 32)
	wantProb, wantMask := refClassify(p, v)

	check := func(label string) {
		t.Helper()
		r := p.Classify(v)
		if r.Probability != wantProb {
			t.Fatalf("%s: probability %v != %v", label, r.Probability, wantProb)
		}
		if r.Positive != (wantProb >= p.Threshold) {
			t.Fatalf("%s: positive call mismatch", label)
		}
		if len(r.LungMask) != len(wantMask) {
			t.Fatalf("%s: mask length %d != %d", label, len(r.LungMask), len(wantMask))
		}
		for i := range wantMask {
			if r.LungMask[i] != wantMask[i] {
				t.Fatalf("%s: mask voxel %d differs", label, i)
			}
		}
		p.RecycleResult(r)
	}
	check("cold")
	check("warm")

	prev := tensor.SetMemDebug(true)
	defer tensor.SetMemDebug(prev)
	check("memdebug")
}

// TestAllocsWarmPipelineEnhance pins zero steady-state heap allocations
// for warm whole-volume enhancement, both writing into a caller volume
// and through the Enhance + RecycleVolume cycle.
func TestAllocsWarmPipelineEnhance(t *testing.T) {
	p := pooledTestPipeline(25)
	v := pooledTestVolume(rand.New(rand.NewSource(26)), 2, 32, 32)
	out := volume.New(v.D, v.H, v.W)
	ctx := context.Background()

	into := func() { p.EnhanceInto(ctx, v, out) }
	into()
	if n := testing.AllocsPerRun(5, into); n != 0 {
		t.Fatalf("warm EnhanceInto allocates %v allocs/op, want 0", n)
	}

	cycle := func() { p.RecycleVolume(p.Enhance(v)) }
	cycle()
	if n := testing.AllocsPerRun(5, cycle); n != 0 {
		t.Fatalf("warm Enhance+RecycleVolume allocates %v allocs/op, want 0", n)
	}
}

// TestAllocsWarmPipelineClassify pins zero steady-state heap
// allocations for a warm Classify + RecycleResult cycle — segmentation,
// masking, windowing, and the classifier forward included.
func TestAllocsWarmPipelineClassify(t *testing.T) {
	p := pooledTestPipeline(27)
	v := pooledTestVolume(rand.New(rand.NewSource(28)), 8, 32, 32)

	cycle := func() { p.RecycleResult(p.Classify(v)) }
	cycle()
	if n := testing.AllocsPerRun(5, cycle); n != 0 {
		t.Fatalf("warm Classify+RecycleResult allocates %v allocs/op, want 0", n)
	}
}

// TestClassifyPooledConcurrent runs warm classifications from several
// goroutines sharing one pipeline (the serving topology) and checks
// every result; under -race this also exercises the arena, scratch free
// list, and mask recycling for data races.
func TestClassifyPooledConcurrent(t *testing.T) {
	p := pooledTestPipeline(29)
	v := pooledTestVolume(rand.New(rand.NewSource(30)), 8, 32, 32)
	want := p.Classify(v).Probability

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 3; k++ {
				r := p.Classify(v)
				if r.Probability != want {
					t.Errorf("concurrent probability %v != %v", r.Probability, want)
				}
				p.RecycleResult(r)
			}
		}()
	}
	wg.Wait()
}

// BenchmarkEnhancePooled measures the warm whole-volume enhancement hot
// path; the CI alloc gate holds its allocs/op at zero.
func BenchmarkEnhancePooled(b *testing.B) {
	p := pooledTestPipeline(31)
	v := pooledTestVolume(rand.New(rand.NewSource(32)), 2, 32, 32)
	out := volume.New(v.D, v.H, v.W)
	ctx := context.Background()
	p.EnhanceInto(ctx, v, out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.EnhanceInto(ctx, v, out)
	}
}

// BenchmarkClassifyPooled measures the warm segmentation +
// classification hot path; the CI alloc gate holds its allocs/op at
// zero.
func BenchmarkClassifyPooled(b *testing.B) {
	p := pooledTestPipeline(33)
	v := pooledTestVolume(rand.New(rand.NewSource(34)), 8, 32, 32)
	p.RecycleResult(p.Classify(v))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.RecycleResult(p.Classify(v))
	}
}
