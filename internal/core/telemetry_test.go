package core

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"computecovid19/internal/classify"
	"computecovid19/internal/obs"
)

// TestStageHistogramsShareFamily pins the label-style convention: the
// three pipeline stages must report into one pipeline_stage_seconds
// metric family, distinguished only by the stage label — a single # TYPE
// line with three labeled series in the Prometheus exposition.
func TestStageHistogramsShareFamily(t *testing.T) {
	for _, h := range []*obs.Histogram{stageEnhanceSeconds, stageSegmentSeconds, stageClassifySeconds} {
		if h == nil {
			t.Fatal("stage histogram handle is nil")
		}
	}
	var buf bytes.Buffer
	if err := obs.Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if got := strings.Count(out, "# TYPE pipeline_stage_seconds histogram"); got != 1 {
		t.Fatalf("pipeline_stage_seconds declared %d times, want one shared family", got)
	}
	for _, stage := range []string{"enhance", "segment", "classify"} {
		series := `pipeline_stage_seconds_count{stage="` + stage + `"`
		if !strings.Contains(out, series) {
			t.Fatalf("missing stage series %s in exposition:\n%s", series, out)
		}
	}
}

// TestClassifyMatchesDiagnose checks that the serving-path tail
// (Classify on an externally enhanced volume) agrees with Diagnose when
// enhancement is disabled, and that it is race-free on a warm pipeline.
func TestClassifyMatchesDiagnose(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	cls := classify.New(rng, classify.SmallConfig())
	p := NewPipeline(nil, cls)
	p.Warm()
	cases := smallCohort(t, 2, 31)

	want := p.Diagnose(cases[0].Volume)
	got := p.Classify(cases[0].Volume)
	if got.Probability != want.Probability || got.Positive != want.Positive {
		t.Fatalf("Classify %+v != Diagnose %+v", got.Probability, want.Probability)
	}

	// Concurrent Classify on shared weights must be safe after Warm
	// (run under -race via make ci).
	done := make(chan float64, 4)
	for i := 0; i < 4; i++ {
		go func() { done <- p.Classify(cases[1].Volume).Probability }()
	}
	first := <-done
	for i := 1; i < 4; i++ {
		if v := <-done; v != first {
			t.Fatalf("concurrent Classify diverged: %v != %v", v, first)
		}
	}
}
