package core

import (
	"math"
	"math/rand"
	"testing"

	"computecovid19/internal/classify"
	"computecovid19/internal/distrib"
	"computecovid19/internal/metrics"
)

// TestTrainClassifierDDPLearnsCohort runs the §4.1 data-parallel path
// end to end on two nodes and checks it behaves like a trainer: the
// loss curve has one entry per epoch, decreases, and the returned
// master replica scores the cohort sensibly in eval mode.
func TestTrainClassifierDDPLearnsCohort(t *testing.T) {
	cases := smallCohort(t, 12, 11)
	factory := func() *classify.Classifier {
		return classify.New(rand.New(rand.NewSource(12)), classify.SmallConfig())
	}
	tc := DefaultClassifierTraining()
	tc.Epochs = 10
	tc.LR = 5e-3
	tc.Augment = false
	cls, curve := TrainClassifierDDP(factory, cases, tc, 2)
	if len(curve) != tc.Epochs {
		t.Fatalf("curve has %d epochs, want %d", len(curve), tc.Epochs)
	}
	for _, l := range curve {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("non-finite loss in curve: %v", curve)
		}
	}
	if curve[len(curve)-1] >= curve[0] {
		t.Fatalf("DDP classifier loss did not decrease: %v", curve)
	}

	p := NewPipeline(nil, cls)
	probs, labels := p.Score(cases)
	for _, pr := range probs {
		if pr < 0 || pr > 1 {
			t.Fatalf("probability %v out of range", pr)
		}
	}
	if auc := metrics.AUC(probs, labels); auc < 0.6 {
		t.Fatalf("training-set AUC = %v, want > 0.6", auc)
	}
}

// TestTrainClassifierDDPElasticResumeBitIdentical checks the classifier-
// scale resume contract: train 1 epoch and checkpoint, then resume for
// the full schedule in a fresh process-equivalent (new trainer, same
// checkpoint dir) and compare against an uninterrupted run. The epoch
// curve and final parameters must match exactly — `cctrain -resume` is
// the run, not an approximation of it.
func TestTrainClassifierDDPElasticResumeBitIdentical(t *testing.T) {
	cases := smallCohort(t, 8, 5)
	factory := func() *classify.Classifier {
		return classify.New(rand.New(rand.NewSource(7)), classify.SmallConfig())
	}
	tc := DefaultClassifierTraining()
	tc.Epochs = 3
	tc.LR = 5e-3
	tc.Augment = true // exercise the checkpointed augmentation RNG stream
	tc.BatchSize = 4
	stepsPerEpoch := (len(cases) + tc.BatchSize - 1) / tc.BatchSize

	// Reference: uninterrupted 3-epoch run.
	refCls, refRes, err := TrainClassifierDDPElastic(factory, cases, tc, 2, DDPFaultConfig{})
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: 1 epoch, checkpoint on the epoch boundary, then resume
	// with a fresh trainer for the remaining schedule.
	dir := t.TempDir()
	short := tc
	short.Epochs = 1
	ft := DDPFaultConfig{CheckpointDir: dir, CheckpointEvery: stepsPerEpoch, Keep: -1}
	if _, _, err := TrainClassifierDDPElastic(factory, cases, short, 2, ft); err != nil {
		t.Fatal(err)
	}
	ft.Resume = true
	resCls, resRes, err := TrainClassifierDDPElastic(factory, cases, tc, 2, ft)
	if err != nil {
		t.Fatal(err)
	}
	if resRes.FirstStep != uint64(stepsPerEpoch) {
		t.Fatalf("resumed run started at step %d, want %d", resRes.FirstStep, stepsPerEpoch)
	}

	for s := resRes.FirstStep; s < refRes.Steps; s++ {
		lr, okR := refRes.LossAt(s)
		lm, okM := resRes.LossAt(s)
		if !okR || !okM || lr != lm {
			t.Fatalf("step %d: resumed loss %v (ok=%v) != uninterrupted %v (ok=%v)", s, lm, okM, lr, okR)
		}
	}
	rp, mp := refCls.Params(), resCls.Params()
	for i := range rp {
		for j := range rp[i].T.Data {
			if rp[i].T.Data[j] != mp[i].T.Data[j] {
				t.Fatalf("param %d elem %d: resumed %v != uninterrupted %v (not bit-identical)",
					i, j, mp[i].T.Data[j], rp[i].T.Data[j])
			}
		}
	}
}

// TestTrainClassifierDDPElasticSurvivesCrash injects a rank crash into a
// 2-node classifier run and checks elastic recovery completes the
// schedule with one recovery event.
func TestTrainClassifierDDPElasticSurvivesCrash(t *testing.T) {
	cases := smallCohort(t, 8, 6)
	factory := func() *classify.Classifier {
		return classify.New(rand.New(rand.NewSource(8)), classify.SmallConfig())
	}
	tc := DefaultClassifierTraining()
	tc.Epochs = 2
	tc.LR = 5e-3
	tc.Augment = false
	tc.BatchSize = 4

	plan := distrib.NewFaultPlan(1)
	plan.CrashRankAtStep(1, 2)
	_, res, err := TrainClassifierDDPElastic(factory, cases, tc, 2, DDPFaultConfig{
		CheckpointDir:   t.TempDir(),
		CheckpointEvery: 2,
		Ring:            distrib.RingOptions{Faults: plan},
	})
	if err != nil {
		t.Fatalf("elastic run did not survive the crash: %v", err)
	}
	if len(res.Recoveries) != 1 {
		t.Fatalf("want one recovery event, got %d", len(res.Recoveries))
	}
	if res.Recoveries[0].Nodes != 1 {
		t.Fatalf("group should have shrunk to 1 node, got %d", res.Recoveries[0].Nodes)
	}
	if res.Steps != uint64(2*2) {
		t.Fatalf("run ended at step %d, want 4", res.Steps)
	}
}
