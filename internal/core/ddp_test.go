package core

import (
	"math"
	"math/rand"
	"testing"

	"computecovid19/internal/classify"
	"computecovid19/internal/metrics"
)

// TestTrainClassifierDDPLearnsCohort runs the §4.1 data-parallel path
// end to end on two nodes and checks it behaves like a trainer: the
// loss curve has one entry per epoch, decreases, and the returned
// master replica scores the cohort sensibly in eval mode.
func TestTrainClassifierDDPLearnsCohort(t *testing.T) {
	cases := smallCohort(t, 12, 11)
	factory := func() *classify.Classifier {
		return classify.New(rand.New(rand.NewSource(12)), classify.SmallConfig())
	}
	tc := DefaultClassifierTraining()
	tc.Epochs = 10
	tc.LR = 5e-3
	tc.Augment = false
	cls, curve := TrainClassifierDDP(factory, cases, tc, 2)
	if len(curve) != tc.Epochs {
		t.Fatalf("curve has %d epochs, want %d", len(curve), tc.Epochs)
	}
	for _, l := range curve {
		if math.IsNaN(l) || math.IsInf(l, 0) {
			t.Fatalf("non-finite loss in curve: %v", curve)
		}
	}
	if curve[len(curve)-1] >= curve[0] {
		t.Fatalf("DDP classifier loss did not decrease: %v", curve)
	}

	p := NewPipeline(nil, cls)
	probs, labels := p.Score(cases)
	for _, pr := range probs {
		if pr < 0 || pr > 1 {
			t.Fatalf("probability %v out of range", pr)
		}
	}
	if auc := metrics.AUC(probs, labels); auc < 0.6 {
		t.Fatalf("training-set AUC = %v, want > 0.6", auc)
	}
}
