package core

import (
	"math/rand"
	"strings"
	"testing"

	"computecovid19/internal/classify"
	"computecovid19/internal/phantom"
	"computecovid19/internal/volume"
)

// serialScans renders one patient's anatomy at several timepoints with
// lesions that grow (or shrink) by the given per-step factor.
func serialScans(seed int64, size, depth, timepoints int, severity, growth float64) []*volume.Volume {
	rng := rand.New(rand.NewSource(seed))
	base := phantom.NewChest(rng, size, depth)
	base.AddRandomLesions(rng, 3, severity)
	template := append([]phantom.Lesion(nil), base.Lesions...)

	var scans []*volume.Volume
	scale := 1.0
	for tp := 0; tp < timepoints; tp++ {
		c := *base
		c.Lesions = make([]phantom.Lesion, len(template))
		for i, l := range template {
			l.RX *= scale
			l.RY *= scale
			l.RZ *= scale
			c.Lesions[i] = l
		}
		v := volume.New(depth, size, size)
		for z := 0; z < depth; z++ {
			copy(v.Slice(z), c.SliceHU(z))
		}
		scans = append(scans, v)
		scale *= growth
	}
	return scans
}

func TestLesionBurdenOrdersSeverity(t *testing.T) {
	scans := serialScans(1, 48, 6, 3, 0.5, 1.6)
	rng := rand.New(rand.NewSource(2))
	cls := classify.New(rng, classify.SmallConfig())
	p := NewPipeline(nil, cls)
	var burdens []float64
	for _, v := range scans {
		r := p.Diagnose(v)
		burdens = append(burdens, LesionBurden(r.Enhanced, r.LungMask, DefaultBurdenThresholdHU))
	}
	for i := 1; i < len(burdens); i++ {
		if burdens[i] <= burdens[i-1] {
			t.Fatalf("growing lesions must raise burden: %v", burdens)
		}
	}
}

func TestLesionBurdenEmptyMask(t *testing.T) {
	v := volume.New(1, 4, 4)
	if b := LesionBurden(v, make([]bool, 16), -500); b != 0 {
		t.Fatalf("burden with empty mask = %v, want 0", b)
	}
}

func TestMonitorWorseningPatient(t *testing.T) {
	scans := serialScans(3, 48, 6, 4, 0.5, 1.5)
	rng := rand.New(rand.NewSource(4))
	cls := classify.New(rng, classify.SmallConfig())
	p := NewPipeline(nil, cls)
	records := p.Monitor(scans, []int{0, 7, 14, 21})
	if got := BurdenTrend(records); got != Worsening {
		t.Fatalf("trend = %v, want worsening (records: %+v)", got, records)
	}
	report := MonitorReport(records)
	if !strings.Contains(report, "worsening") {
		t.Fatalf("report missing trend:\n%s", report)
	}
}

func TestMonitorImprovingPatient(t *testing.T) {
	scans := serialScans(5, 48, 6, 4, 1.4, 0.6)
	rng := rand.New(rand.NewSource(6))
	cls := classify.New(rng, classify.SmallConfig())
	p := NewPipeline(nil, cls)
	records := p.Monitor(scans, []int{0, 7, 14, 21})
	if got := BurdenTrend(records); got != Improving {
		t.Fatalf("trend = %v, want improving (records: %+v)", got, records)
	}
}

func TestBurdenTrendEdgeCases(t *testing.T) {
	if BurdenTrend(nil) != Stable {
		t.Fatal("empty series should be stable")
	}
	if BurdenTrend([]ScanRecord{{Day: 1, Burden: 0.5}}) != Stable {
		t.Fatal("single record should be stable")
	}
	flat := []ScanRecord{{Day: 0, Burden: 0.10}, {Day: 7, Burden: 0.101}, {Day: 14, Burden: 0.099}}
	if BurdenTrend(flat) != Stable {
		t.Fatal("near-flat series should be stable")
	}
	sameDay := []ScanRecord{{Day: 3, Burden: 0.1}, {Day: 3, Burden: 0.9}}
	if BurdenTrend(sameDay) != Stable {
		t.Fatal("degenerate same-day series should be stable")
	}
}

func TestTrendString(t *testing.T) {
	if Stable.String() != "stable" || Worsening.String() != "worsening" || Improving.String() != "improving" {
		t.Fatal("trend names wrong")
	}
}
