package core

import (
	"context"
	"time"

	"computecovid19/internal/ctsim"
	"computecovid19/internal/obs"
	"computecovid19/internal/segment"
	"computecovid19/internal/tensor"
	"computecovid19/internal/volume"
)

// scanScratch is the per-scan working memory of the inference hot path:
// the segmenter scratch, the normalized slice staging pair for
// Enhancement AI, and the masked+windowed volume fed to Classification
// AI. One scratch serves one scan at a time; the pipeline keeps a free
// list so concurrent scans each grab their own and warm steady state
// allocates nothing.
type scanScratch struct {
	seg *segment.Scratch
	// The slice staging pair lives in length-1 arrays so the batch
	// slices handed to EnhanceBatchInto point into the (heap-resident)
	// scratch rather than a stack array that would escape per call.
	imgs [1]*tensor.Tensor // normalized input slice
	outs [1]*tensor.Tensor // enhanced output slice
	norm *volume.Volume    // masked, windowed classifier input
}

func (s *scanScratch) ensureSlice(h, w int) {
	if s.imgs[0] == nil || s.imgs[0].Shape[0] != h || s.imgs[0].Shape[1] != w {
		s.imgs[0] = tensor.New(h, w)
		s.outs[0] = tensor.New(h, w)
	}
}

func (s *scanScratch) ensureVolume(d, h, w int) {
	if s.norm == nil || s.norm.D != d || s.norm.H != h || s.norm.W != w {
		s.norm = volume.New(d, h, w)
	}
}

func (p *Pipeline) getScratch() *scanScratch {
	p.scratchMu.Lock()
	if n := len(p.scratch); n > 0 {
		s := p.scratch[n-1]
		p.scratch[n-1] = nil
		p.scratch = p.scratch[:n-1]
		p.scratchMu.Unlock()
		return s
	}
	p.scratchMu.Unlock()
	return &scanScratch{seg: segment.NewScratch(p.Arena())}
}

func (p *Pipeline) putScratch(s *scanScratch) {
	p.scratchMu.Lock()
	p.scratch = append(p.scratch, s)
	p.scratchMu.Unlock()
}

// GetVolume returns a recycled volume of the requested dimensions (see
// RecycleVolume), or a fresh one when none is pooled. The contents are
// whatever the previous user left; callers must fully overwrite them.
func (p *Pipeline) GetVolume(d, h, w int) *volume.Volume {
	p.volMu.Lock()
	for i := len(p.vols) - 1; i >= 0; i-- {
		v := p.vols[i]
		if v.D == d && v.H == h && v.W == w {
			last := len(p.vols) - 1
			p.vols[i] = p.vols[last]
			p.vols[last] = nil
			p.vols = p.vols[:last]
			p.volMu.Unlock()
			return v
		}
	}
	p.volMu.Unlock()
	return volume.New(d, h, w)
}

// RecycleVolume hands a pipeline-produced volume (an Enhance output, or
// Result.Enhanced from Diagnose when enhancement ran) back for reuse by
// later scans. Only recycle volumes the pipeline returned to you, and
// never one that aliases your own input: with a nil Enhancer, Enhance
// and Diagnose return the input volume itself, and Classify's
// Result.Enhanced is always the caller's volume. Recycling nil is a
// no-op.
func (p *Pipeline) RecycleVolume(v *volume.Volume) {
	if v == nil {
		return
	}
	p.volMu.Lock()
	p.vols = append(p.vols, v)
	p.volMu.Unlock()
}

// RecycleResult returns a Result's pooled storage — the lung mask — to
// the pipeline arena. Call it once the result is fully consumed; a warm
// serving loop that recycles results runs Classify with zero
// steady-state heap allocations. Result.Enhanced is deliberately not
// recycled here because it may alias the caller's input volume; use
// RecycleVolume for volumes you own.
func (p *Pipeline) RecycleResult(r Result) {
	if r.LungMask != nil {
		p.Arena().PutBools(r.LungMask)
	}
}

// EnhanceInto is Enhance writing into a caller-provided volume: the
// zero-allocation form of the enhancement stage. out must match v's
// dimensions and is fully overwritten; with no enhancer the input is
// copied. Unlike Enhance, the forward-pass spans continue the context's
// trace.
func (p *Pipeline) EnhanceInto(ctx context.Context, v, out *volume.Volume) {
	if out.D != v.D || out.H != v.H || out.W != v.W {
		panic("core: EnhanceInto output must match the input dimensions")
	}
	_, sp := obs.StartCtx(ctx, "core/enhance")
	start := time.Now()
	defer func() {
		stageEnhanceSeconds.Observe(time.Since(start).Seconds())
		sp.End()
	}()
	sp.SetAttr("slices", v.D)
	if p.Enhancer == nil {
		copy(out.Data, v.Data)
		return
	}
	p.enhanceSlices(ctx, v, out)
}

// EnhanceRangeInto enhances only slices [z0, z1) of v, writing them into
// out (dimensions (z1-z0)×H×W, fully overwritten) — the replica-side
// unit of the cluster gateway's slice sharding. The input range is a
// zero-copy view (volume.SliceRange); out is caller-owned, so a serving
// handler can gather straight into pooled or response storage. Slice z
// of out is slice z0+z of the full enhancement: per-slice forwards are
// independent, so a sharded scan reassembles bit-identically to
// EnhanceInto over the whole volume.
func (p *Pipeline) EnhanceRangeInto(ctx context.Context, v *volume.Volume, z0, z1 int, out *volume.Volume) {
	in := v.SliceRange(z0, z1)
	if out.D != in.D || out.H != in.H || out.W != in.W {
		panic("core: EnhanceRangeInto output must match the slice-range dimensions")
	}
	_, sp := obs.StartCtx(ctx, "core/enhance")
	start := time.Now()
	defer func() {
		stageEnhanceSeconds.Observe(time.Since(start).Seconds())
		sp.End()
	}()
	sp.SetAttr("slices", in.D)
	if p.Enhancer == nil {
		copy(out.Data, in.Data)
		return
	}
	p.enhanceSlices(ctx, in, out)
}

// enhanceSlices runs Enhancement AI slice by slice from pooled memory,
// writing the enhanced HU volume into out (every voxel overwritten).
func (p *Pipeline) enhanceSlices(ctx context.Context, v, out *volume.Volume) {
	s := p.getScratch()
	s.ensureSlice(v.H, v.W)
	img, enh := s.imgs[0], s.outs[0]
	for z := 0; z < v.D; z++ {
		src := v.Slice(z)
		for i, hu := range src {
			img.Data[i] = float32(ctsim.NormalizeHU(float64(hu), p.WindowLo, p.WindowHi))
		}
		p.Enhancer.EnhanceBatchInto(ctx, p.Arena(), s.imgs[:], s.outs[:])
		dst := out.Slice(z)
		for i, val := range enh.Data {
			dst[i] = float32(ctsim.DenormalizeHU(float64(val), p.WindowLo, p.WindowHi))
		}
	}
	p.putScratch(s)
}
