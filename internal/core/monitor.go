package core

import (
	"fmt"

	"computecovid19/internal/segment"
	"computecovid19/internal/volume"
)

// Monitoring support: the paper's title promises diagnosis *and
// monitoring* — §2 notes ComputeCOVID19+ "can deliver better and more
// timely diagnostic monitoring for progressing COVID-19 patients". This
// file quantifies progression across serial scans of one patient: the
// lesion burden (opacified fraction of the segmented lung) and its
// trend.

// LesionBurden returns the fraction of lung voxels whose density exceeds
// thresholdHU — ground-glass and consolidation raise lung voxels from
// ≈ −800 HU toward −300…0 HU, so a threshold of −500 HU separates
// opacified from aerated lung.
func LesionBurden(v *volume.Volume, lungMask []bool, thresholdHU float64) float64 {
	if len(lungMask) != len(v.Data) {
		panic("core: LesionBurden mask size mismatch")
	}
	lung, opaque := 0, 0
	for i, inLung := range lungMask {
		if !inLung {
			continue
		}
		lung++
		if float64(v.Data[i]) > thresholdHU {
			opaque++
		}
	}
	if lung == 0 {
		return 0
	}
	return float64(opaque) / float64(lung)
}

// DefaultBurdenThresholdHU separates aerated from opacified lung.
const DefaultBurdenThresholdHU = -500.0

// ScanRecord is one timepoint of a monitored patient.
type ScanRecord struct {
	// Day is the acquisition day (relative to first presentation).
	Day int
	// Probability is Classification AI's COVID-positive probability.
	Probability float64
	// Burden is the opacified lung fraction in [0, 1].
	Burden float64
}

// Monitor runs the pipeline over a patient's serial scans and returns
// one record per timepoint.
func (p *Pipeline) Monitor(scans []*volume.Volume, days []int) []ScanRecord {
	if len(scans) != len(days) {
		panic("core: Monitor needs one day per scan")
	}
	records := make([]ScanRecord, len(scans))
	for i, v := range scans {
		r := p.Diagnose(v)
		records[i] = ScanRecord{
			Day:         days[i],
			Probability: r.Probability,
			Burden:      LesionBurden(r.Enhanced, r.LungMask, DefaultBurdenThresholdHU),
		}
	}
	return records
}

// Trend classifies a monitored series by the least-squares slope of the
// lesion burden over time.
type Trend int

// Possible progression trends.
const (
	Stable Trend = iota
	Worsening
	Improving
)

// String names the trend.
func (t Trend) String() string {
	switch t {
	case Worsening:
		return "worsening"
	case Improving:
		return "improving"
	default:
		return "stable"
	}
}

// BurdenTrend fits burden = a + b·day and classifies the slope b against
// a ±0.2 %/day dead zone.
func BurdenTrend(records []ScanRecord) Trend {
	if len(records) < 2 {
		return Stable
	}
	var sx, sy, sxx, sxy float64
	for _, r := range records {
		x, y := float64(r.Day), r.Burden
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	n := float64(len(records))
	den := n*sxx - sx*sx
	if den == 0 {
		return Stable
	}
	slope := (n*sxy - sx*sy) / den
	const deadZone = 0.002 // burden fraction per day
	switch {
	case slope > deadZone:
		return Worsening
	case slope < -deadZone:
		return Improving
	default:
		return Stable
	}
}

// MonitorReport renders a monitored series for clinicians.
func MonitorReport(records []ScanRecord) string {
	out := "day  P(COVID)  lesion burden\n"
	for _, r := range records {
		out += fmt.Sprintf("%3d  %8.3f  %6.1f%%\n", r.Day, r.Probability, r.Burden*100)
	}
	out += fmt.Sprintf("trend: %s\n", BurdenTrend(records))
	return out
}

// SegmentationQuality scores Segmentation AI against a reference mask
// (our phantoms provide generative ground truth) using the
// Dice–Sørensen coefficient.
func SegmentationQuality(predicted, truth []bool) float64 {
	return segment.Dice(predicted, truth)
}
