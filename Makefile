GO ?= go

# Benchmark time per case; CI overrides with BENCHTIME=1x so the bench
# targets stay in seconds, local runs can use e.g. BENCHTIME=500ms.
BENCHTIME ?=
BENCHFLAGS = -bench . -benchmem -run '^$$' $(if $(BENCHTIME),-benchtime=$(BENCHTIME))

.PHONY: build test race vet fmt lint lint-tools chaos cluster-chaos cover alloc bench benchcheck ci clean

# Pinned static-analysis tool versions; `make lint-tools` installs them
# (CI does this — it needs network, so it is not part of `make lint`).
STATICCHECK_VERSION ?= 2024.1.1
GOVULNCHECK_VERSION ?= v1.1.3

# Minimum covered-statement percentage for internal/distrib (the fault
# tolerance machinery); enforced by `make cover` / the CI test job.
DISTRIB_MIN_COVER ?= 80

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the obs metric registry
# and span buffer, the parallel-for pool, the kernel-registry tiling,
# the memplan arena, the DDP trainer, the pooled pipeline, the
# inference server (worker pool + micro-batcher + admission control),
# and the cluster gateway (router, hedges, prober).
race:
	$(GO) test -race ./internal/obs/... ./internal/parallel/... ./internal/kernels/... ./internal/memplan/... ./internal/distrib/... ./internal/serve/... ./internal/cluster/...
	$(GO) test -race -run 'Pooled|Concurrent|Allocs' ./internal/core/
	$(GO) test -race -run 'Warm|Fused' ./internal/ddnet/

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean (CI lint job).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# Static analysis beyond vet: gofmt, go vet, staticcheck, and
# govulncheck. The last two run only when installed (`make lint-tools`);
# a loud SKIP is printed otherwise so local runs without network still
# pass while CI — which always installs them — gets the full gate.
lint: fmt vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		echo "staticcheck ./..."; staticcheck ./...; \
	else \
		echo "SKIP staticcheck (not installed; run 'make lint-tools')"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		echo "govulncheck ./..."; govulncheck ./...; \
	else \
		echo "SKIP govulncheck (not installed; run 'make lint-tools')"; \
	fi

# Install the pinned analysis tools (requires network; CI-only in
# offline environments).
lint-tools:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	$(GO) install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)

# Repetition counts for the chaos suites; the nightly CI lane raises
# them (more scheduling interleavings per run), the PR lane keeps the
# defaults fast.
CHAOS_COUNT ?= 2
CLUSTER_CHAOS_COUNT ?= 2

# Chaos suite: every fault-injection test (rank crash, message drop,
# corrupt payload, delay, straggler, elastic recovery) repeated under
# the race detector — the CI nightly chaos job runs exactly this.
chaos:
	$(GO) test ./internal/distrib/... -run Fault -count=$(CHAOS_COUNT) -race

# Cluster chaos: the replica-kill-mid-load tests (3 replicas behind the
# gateway, one killed and restarted, zero client-visible failures —
# unsharded and scatter/gather-sharded) under the race detector — the
# CI nightly cluster job runs exactly this.
cluster-chaos:
	$(GO) test ./internal/cluster/ -run Chaos -count=$(CLUSTER_CHAOS_COUNT) -race -v

# Coverage gate: profile internal/distrib and fail below
# DISTRIB_MIN_COVER percent covered statements.
cover:
	$(GO) test -coverprofile=coverage-distrib.out ./internal/distrib/
	./scripts/covcheck.sh coverage-distrib.out $(DISTRIB_MIN_COVER)

# Allocation gate: the AllocsPerRun tests asserting the warm inference
# hot paths (arena get/release, DDnet enhance, classifier predict, and
# the whole-pipeline enhance/classify) allocate exactly zero bytes per
# operation in steady state. Deterministic, so it blocks CI outright —
# no threshold, no noise floor.
alloc:
	$(GO) test -run 'TestAllocs' -count=1 ./internal/memplan/ ./internal/ddnet/ ./internal/classify/ ./internal/core/

# The full gate CI runs: build, lint, the whole test suite, the
# race-detector pass over the concurrent packages, both chaos suites,
# the allocation gate, and the distrib coverage gate.
ci: build lint test race chaos cluster-chaos alloc cover

# Disabled-telemetry overhead (must stay in the single-digit ns/op
# range), the parallel-for overhead benchmark, the kernel
# optimization-ladder rungs, and the pooled pipeline hot paths (whose
# allocs/op must stay 0 — see `make alloc`).
bench:
	$(GO) test $(BENCHFLAGS) ./internal/obs/
	$(GO) test $(BENCHFLAGS) ./internal/parallel/
	$(GO) test $(BENCHFLAGS) ./internal/kernels/
	$(GO) test $(BENCHFLAGS) ./internal/core/

# Benchmark-regression gate: benchmark a baseline checkout (BASE_REF,
# default origin/main or HEAD~1) against HEAD and fail on >15% ns/op
# regressions. See scripts/benchcheck.sh for the knobs.
benchcheck:
	./scripts/benchcheck.sh

clean:
	$(GO) clean ./...
