GO ?= go

# Benchmark time per case; CI overrides with BENCHTIME=1x so the bench
# targets stay in seconds, local runs can use e.g. BENCHTIME=500ms.
BENCHTIME ?=
BENCHFLAGS = -bench . -benchmem -run '^$$' $(if $(BENCHTIME),-benchtime=$(BENCHTIME))

.PHONY: build test race vet fmt bench benchcheck ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the obs metric registry
# and span buffer, the parallel-for pool, the kernel-registry tiling,
# the DDP trainer, and the inference server (worker pool +
# micro-batcher + admission control).
race:
	$(GO) test -race ./internal/obs/... ./internal/parallel/... ./internal/kernels/... ./internal/distrib/... ./internal/serve/...

vet:
	$(GO) vet ./...

# Fail when any file is not gofmt-clean (CI lint job).
fmt:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi

# The full gate CI runs: build, vet, the whole test suite, and the
# race-detector pass over the concurrent packages.
ci: build vet test race

# Disabled-telemetry overhead (must stay in the single-digit ns/op
# range), the parallel-for overhead benchmark, and the kernel
# optimization-ladder rungs.
bench:
	$(GO) test $(BENCHFLAGS) ./internal/obs/
	$(GO) test $(BENCHFLAGS) ./internal/parallel/
	$(GO) test $(BENCHFLAGS) ./internal/kernels/

# Benchmark-regression gate: benchmark a baseline checkout (BASE_REF,
# default origin/main or HEAD~1) against HEAD and fail on >15% ns/op
# regressions. See scripts/benchcheck.sh for the knobs.
benchcheck:
	./scripts/benchcheck.sh

clean:
	$(GO) clean ./...
