GO ?= go

.PHONY: build test race vet bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the obs metric registry
# and span buffer, the parallel-for pool, and the DDP trainer.
race:
	$(GO) test -race ./internal/obs/... ./internal/parallel/... ./internal/distrib/...

vet:
	$(GO) vet ./...

# Disabled-telemetry overhead (must stay in the single-digit ns/op
# range) plus the parallel-for overhead benchmark.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/obs/
	$(GO) test -bench . -benchmem -run '^$$' ./internal/parallel/

clean:
	$(GO) clean ./...
