GO ?= go

.PHONY: build test race vet bench ci clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the obs metric registry
# and span buffer, the parallel-for pool, the DDP trainer, and the
# inference server (worker pool + micro-batcher + admission control).
race:
	$(GO) test -race ./internal/obs/... ./internal/parallel/... ./internal/distrib/... ./internal/serve/...

vet:
	$(GO) vet ./...

# The full gate CI runs: build, vet, the whole test suite, and the
# race-detector pass over the concurrent packages.
ci: build vet test race

# Disabled-telemetry overhead (must stay in the single-digit ns/op
# range) plus the parallel-for overhead benchmark.
bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/obs/
	$(GO) test -bench . -benchmem -run '^$$' ./internal/parallel/

clean:
	$(GO) clean ./...
