#!/usr/bin/env bash
# benchcheck: benchmark-regression gate.
#
# Checks out a baseline ref into a temporary git worktree, runs the
# kernel, observability, and pipeline benchmarks in both trees with
# identical settings, and fails when HEAD regresses any benchmark
# present in both by more than THRESHOLD percent ns/op. Benchmarks that
# exist on only one side (renamed or newly added) are reported and
# skipped, so adding a rung never breaks the gate.
#
# The runs carry -benchmem, and a second benchdiff pass in -allocs mode
# gates B/op and allocs/op EXACTLY (no threshold, no floor) on the
# pooled hot-path benchmarks (names matching "Pooled"): allocation
# counts are deterministic, so a single new alloc/op on the
# zero-allocation inference path fails the gate.
#
# Knobs (environment):
#   BASE_REF    baseline ref (default: origin/main if it exists, else HEAD~1)
#   THRESHOLD   allowed ns/op regression in percent (default: 15)
#   FLOOR       noise floor in ns/op: regressions smaller than this
#               absolute delta never fail, however large in percent —
#               keeps single-digit-ns benchmarks from tripping the
#               blocking gate on jitter (default: 20)
#   BENCHTIME   go test -benchtime per case (default: 200ms)
#   COUNT       go test -count; the gate compares per-benchmark medians
#               across runs to suppress scheduler noise (default: 5)
#   PKGS        packages to benchmark (default: ./internal/kernels/
#               ./internal/obs/ ./internal/core/ ./internal/parallel/)
#   GITHUB_STEP_SUMMARY  when set (GitHub Actions sets it), both
#               benchdiff passes also append their verdicts there as
#               markdown tables
set -euo pipefail
cd "$(dirname "$0")/.."

# An interrupted earlier run (Ctrl-C, CI cancellation, OOM kill) can
# leave its baseline worktree behind; a leftover registration also
# blocks future checkouts of the same ref. Reap any stale benchcheck
# worktrees first — idempotent, and never touches worktrees this script
# did not create (ours live under a mktemp "benchcheck." directory).
git worktree list --porcelain 2>/dev/null | awk '/^worktree /{print $2}' |
    while IFS= read -r wt; do
        case "$wt" in
        */benchcheck.*/base)
            echo "benchcheck: removing stale worktree $wt"
            git worktree remove --force "$wt" 2>/dev/null || true
            rm -rf "$(dirname "$wt")"
            ;;
        esac
    done
git worktree prune

BASE_REF="${BASE_REF:-}"
if [ -z "$BASE_REF" ]; then
    if git rev-parse --verify -q origin/main >/dev/null; then
        BASE_REF=origin/main
    else
        BASE_REF=HEAD~1
    fi
fi
THRESHOLD="${THRESHOLD:-15}"
FLOOR="${FLOOR:-20}"
BENCHTIME="${BENCHTIME:-200ms}"
COUNT="${COUNT:-5}"
PKGS="${PKGS:-./internal/kernels/ ./internal/obs/ ./internal/core/ ./internal/parallel/}"

tmp="$(mktemp -d -t benchcheck.XXXXXXXX)"
cleanup() {
    git worktree remove --force "$tmp/base" 2>/dev/null || true
    rm -rf "$tmp"
}
# The EXIT trap alone does not fire when a signal kills the shell;
# convert INT/TERM into an exit so cleanup always runs, with the
# conventional 128+signal status.
trap cleanup EXIT
trap 'exit 130' INT
trap 'exit 143' TERM

echo "benchcheck: baseline $BASE_REF vs HEAD (threshold ${THRESHOLD}%, floor ${FLOOR}ns, benchtime $BENCHTIME, count $COUNT)"
git worktree add --quiet --detach "$tmp/base" "$BASE_REF"

run_bench() { # $1 = tree, $2 = output file
    # A package may not exist in the baseline tree yet; benchmark the
    # intersection so newly added benchmark packages never break the gate.
    (
        cd "$1"
        pkgs=""
        for p in $PKGS; do
            if [ -d "$p" ]; then pkgs="$pkgs $p"; fi
        done
        go test -run '^$' -bench . -benchmem -benchtime="$BENCHTIME" -count="$COUNT" $pkgs
    ) >"$2"
}

run_bench "$tmp/base" "$tmp/base.txt"
run_bench . "$tmp/head.txt"

# benchdiff always runs from HEAD's tree, so the baseline does not need
# to contain the tool. Under GitHub Actions the verdicts also land on
# the run's summary page as markdown tables.
md="${GITHUB_STEP_SUMMARY:-}"
go run ./cmd/benchdiff -threshold "$THRESHOLD" -floor "$FLOOR" ${md:+-md "$md"} "$tmp/base.txt" "$tmp/head.txt"
go run ./cmd/benchdiff -allocs ${md:+-md "$md"} "$tmp/base.txt" "$tmp/head.txt"
