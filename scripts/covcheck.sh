#!/usr/bin/env bash
# covcheck: minimum-coverage gate for one coverprofile.
#
# Reads the `total:` line of `go tool cover -func` and fails when the
# covered-statement percentage is below the minimum. Used by CI to keep
# the fault-tolerance machinery (internal/distrib) from losing its test
# coverage as it grows.
#
# Usage: covcheck.sh <profile.out> <min-percent>
set -euo pipefail

if [ $# -ne 2 ]; then
    echo "usage: covcheck.sh <profile.out> <min-percent>" >&2
    exit 2
fi
profile="$1"
min="$2"

total="$(go tool cover -func="$profile" | awk '/^total:/ {gsub(/%/, "", $3); print $3}')"
if [ -z "$total" ]; then
    echo "covcheck: no total line in $profile" >&2
    exit 2
fi

echo "covcheck: $profile total coverage ${total}% (minimum ${min}%)"

status="ok"
fail=0
# awk handles the float comparison portably.
if awk -v t="$total" -v m="$min" 'BEGIN { exit !(t < m) }'; then
    status="**BELOW MINIMUM**"
    fail=1
fi

# Under GitHub Actions, render the verdict on the run's summary page.
if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    {
        echo "### Coverage gate"
        echo
        echo "| profile | total | minimum | status |"
        echo "|---|---|---|---|"
        echo "| \`$profile\` | ${total}% | ${min}% | $status |"
        echo
    } >>"$GITHUB_STEP_SUMMARY"
fi

if [ "$fail" -ne 0 ]; then
    echo "covcheck: coverage ${total}% is below the ${min}% minimum" >&2
    exit 1
fi
