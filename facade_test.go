package computecovid19

import (
	"math/rand"
	"testing"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/tensor"
)

func randImage(rng *rand.Rand, size int) *tensor.Tensor {
	return tensor.New(size, size).RandU(rng, 0, 1)
}

func TestFacadeEndToEnd(t *testing.T) {
	enh := NewDDnet(1, ddnet.TinyConfig())
	cls := NewClassifier(2, classify.SmallConfig())
	p := NewPipeline(enh, cls)

	ccfg := dataset.DefaultCohortConfig()
	ccfg.Count = 2
	ccfg.Size = 32
	ccfg.Depth = 8
	cases := BuildCohort(ccfg)
	r := p.Diagnose(cases[0].Volume)
	if r.Probability < 0 || r.Probability > 1 {
		t.Fatalf("probability out of range: %v", r.Probability)
	}
}

func TestFacadeTraining(t *testing.T) {
	ecfg := dataset.DefaultEnhancementConfig()
	ecfg.Count = 4
	ecfg.Size = 32
	ecfg.Views = 60
	ecfg.Detectors = 48
	pairs := BuildEnhancementPairs(ecfg)
	m := NewDDnet(3, ddnet.TinyConfig())
	tc := core.DefaultEnhancerTraining()
	tc.Epochs = 2
	curve := TrainEnhancer(m, pairs, tc)
	if len(curve) != 2 {
		t.Fatalf("curve length %d", len(curve))
	}

	ccfg := dataset.DefaultCohortConfig()
	ccfg.Count = 8
	ccfg.Size = 32
	ccfg.Depth = 8
	cases := BuildCohort(ccfg)
	cls := NewClassifier(4, classify.SmallConfig())
	ctc := core.DefaultClassifierTraining()
	ctc.Epochs = 2
	curve = TrainClassifier(cls, cases, ctc)
	if len(curve) != 2 {
		t.Fatalf("classifier curve length %d", len(curve))
	}
}
