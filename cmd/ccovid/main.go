// Command ccovid runs the full ComputeCOVID19+ pipeline — Enhancement AI
// → Segmentation AI → Classification AI — over a synthetic screening
// cohort and prints per-scan diagnoses. Models are loaded from files
// produced by cmd/cctrain, or trained on the spot when no files are
// given (with -nodes > 1 the fallback classifier trains data-parallel
// through internal/distrib, the §4.1 DDP path).
//
// Usage:
//
//	ccovid [-enhancer enhancer.cc19] [-classifier classifier.cc19]
//	       [-cases 6] [-size 32] [-depth 8] [-seed 99] [-no-enhance]
//	       [-nodes 1] [-trace trace.json] [-metrics metrics.prom]
//	       [-pprof localhost:6060]
//
// Telemetry: -trace writes a Chrome trace_event JSON file (load in
// chrome://tracing or ui.perfetto.dev), -metrics writes a Prometheus
// text (or .json) metrics dump, -pprof serves net/http/pprof.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strings"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/metrics"
	"computecovid19/internal/nn"
	"computecovid19/internal/obs"
	"computecovid19/internal/volume"
)

// validate fails fast — before any model training spends minutes — when
// a flag names a file that does not exist or a geometry the networks
// cannot process.
func validate(enhPath, clsPath, input string, size, depth, cases, nodes int) error {
	checkFile := func(flagName, path string) error {
		if path == "" {
			return nil
		}
		info, err := os.Stat(path)
		if err != nil {
			return fmt.Errorf("-%s %s: %w", flagName, path, err)
		}
		if info.IsDir() {
			return fmt.Errorf("-%s %s: is a directory, want a file", flagName, path)
		}
		return nil
	}
	if err := checkFile("enhancer", enhPath); err != nil {
		return err
	}
	if err := checkFile("classifier", clsPath); err != nil {
		return err
	}
	if input != "" {
		for _, path := range strings.Split(input, ",") {
			if err := checkFile("input", strings.TrimSpace(path)); err != nil {
				return err
			}
		}
	}
	if div := 1 << ddnet.TinyConfig().Stages; size < div || size%div != 0 {
		return fmt.Errorf("-size %d: must be a positive multiple of %d (DDnet pools %d times)",
			size, div, ddnet.TinyConfig().Stages)
	}
	if depth < 1 {
		return fmt.Errorf("-depth %d: must be at least 1", depth)
	}
	if cases < 1 {
		return fmt.Errorf("-cases %d: must be at least 1", cases)
	}
	if nodes < 1 {
		return fmt.Errorf("-nodes %d: must be at least 1", nodes)
	}
	return nil
}

func main() {
	enhPath := flag.String("enhancer", "", "DDnet model file (trained by cctrain); empty = train briefly now")
	clsPath := flag.String("classifier", "", "classifier model file; empty = train briefly now")
	cases := flag.Int("cases", 6, "cohort size to screen")
	size := flag.Int("size", 32, "volume size (pixels)")
	depth := flag.Int("depth", 8, "volume depth (slices)")
	seed := flag.Int64("seed", 99, "cohort seed")
	noEnhance := flag.Bool("no-enhance", false, "skip Enhancement AI (the paper's grey-arrow ablation)")
	input := flag.String("input", "", "comma-separated .ccvol scan files to diagnose instead of a synthetic cohort")
	nodes := flag.Int("nodes", 1, "data-parallel nodes for fallback classifier training (>1 = DDP via ring all-reduce)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file on exit")
	metricsPath := flag.String("metrics", "", "write metrics on exit (.json = JSON dump, else Prometheus text)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()

	// Validate every user-supplied path and geometry up front: a typo'd
	// -input must not surface only after minutes of fallback training.
	if err := validate(*enhPath, *clsPath, *input, *size, *depth, *cases, *nodes); err != nil {
		fmt.Fprintln(os.Stderr, "ccovid:", err)
		os.Exit(2)
	}

	flush, err := obs.Setup(*tracePath, *metricsPath, *pprofAddr)
	if err != nil {
		log.Fatalf("ccovid: %v", err)
	}
	// flush errors (an unwritable trace/metrics file) must fail the run.
	defer func() {
		if err := flush(); err != nil {
			os.Exit(1)
		}
	}()

	enh := ddnet.New(rand.New(rand.NewSource(1)), ddnet.TinyConfig())

	if *enhPath != "" {
		if err := nn.LoadModuleFile(*enhPath, enh); err != nil {
			log.Fatalf("loading enhancer: %v", err)
		}
		fmt.Println("loaded enhancer from", *enhPath)
	} else if !*noEnhance {
		fmt.Println("no -enhancer given: training DDnet briefly on synthetic pairs...")
		ecfg := dataset.DefaultEnhancementConfig()
		ecfg.Size = *size
		ecfg.Count = 10
		ecfg.Views = 120
		ecfg.Detectors = 64
		ecfg.DoseDivisor = 1e4
		tc := core.DefaultEnhancerTraining()
		tc.Epochs = 6
		core.TrainEnhancer(enh, dataset.BuildEnhancement(ecfg), tc)
	}

	// The screened cohort is acquired at reduced dose (the deployment
	// scenario the paper targets); the classifier is trained on
	// normal-quality scans.
	ccfg := dataset.DefaultCohortConfig()
	ccfg.Size = *size
	ccfg.Depth = *depth
	ccfg.Seed = *seed
	ccfg.Count = *cases
	ccfg.LowDose = true
	ccfg.PhotonsPerRay = 100

	newClassifier := func() *classify.Classifier {
		return classify.New(rand.New(rand.NewSource(2)), classify.SmallConfig())
	}
	var cls *classify.Classifier
	if *clsPath != "" {
		cls = newClassifier()
		if err := nn.LoadModuleFile(*clsPath, cls); err != nil {
			log.Fatalf("loading classifier: %v", err)
		}
		fmt.Println("loaded classifier from", *clsPath)
	} else {
		tcfg := ccfg
		tcfg.Seed = *seed + 1000 // train on a different cohort than we screen
		tcfg.Count = 20
		tcfg.LowDose = false // normal-quality training scans
		tc := core.DefaultClassifierTraining()
		tc.Epochs = 20
		tc.LR = 5e-3
		tc.Augment = false
		if *nodes > 1 {
			fmt.Printf("no -classifier given: training the 3D DenseNet on %d data-parallel nodes (ring all-reduce)...\n", *nodes)
			cls, _ = core.TrainClassifierDDP(newClassifier, dataset.BuildCohort(tcfg), tc, *nodes)
		} else {
			fmt.Println("no -classifier given: training the 3D DenseNet briefly on a synthetic cohort...")
			cls = newClassifier()
			core.TrainClassifier(cls, dataset.BuildCohort(tcfg), tc)
		}
	}

	var pipeline *core.Pipeline
	if *noEnhance {
		pipeline = core.NewPipeline(nil, cls)
	} else {
		pipeline = core.NewPipeline(enh, cls)
	}

	// Calibrate the decision threshold on a held-out validation cohort
	// drawn from the same low-dose distribution as the screening data
	// (the paper picks its 0.061 threshold the same way).
	vcfg := ccfg
	vcfg.Seed = *seed + 2000
	vcfg.Count = 10
	val := dataset.BuildCohort(vcfg)
	probs, labels := pipeline.Score(val)
	pipeline.Threshold = metrics.BestThreshold(probs, labels)
	fmt.Printf("calibrated decision threshold on a validation cohort: %.3f\n", pipeline.Threshold)

	if *input != "" {
		for _, path := range strings.Split(*input, ",") {
			v, err := volume.LoadFile(strings.TrimSpace(path))
			if err != nil {
				log.Fatalf("loading %s: %v", path, err)
			}
			r := pipeline.Diagnose(v)
			verdict := "NEGATIVE"
			if r.Positive {
				verdict = "POSITIVE"
			}
			fmt.Printf("%s: P(COVID)=%.3f -> %s  (%dx%dx%d)\n",
				path, r.Probability, verdict, v.D, v.H, v.W)
		}
		return
	}

	fmt.Printf("\nscreening %d synthetic patients (%dx%dx%d volumes)...\n\n", *cases, *depth, *size, *size)
	cohort := dataset.BuildCohort(ccfg)
	correct := 0
	for i, c := range cohort {
		r := pipeline.Diagnose(c.Volume)
		verdict := "NEGATIVE"
		if r.Positive {
			verdict = "POSITIVE"
		}
		truth := "healthy"
		if c.Label {
			truth = "COVID-19"
		}
		ok := r.Positive == c.Label
		if ok {
			correct++
		}
		lung := 0
		for _, m := range r.LungMask {
			if m {
				lung++
			}
		}
		fmt.Printf("patient %d: P(COVID)=%.3f -> %s  (ground truth: %s, lung voxels: %d)\n",
			i, r.Probability, verdict, truth, lung)
	}
	fmt.Printf("\n%d/%d correct at threshold %.4f (cf. the paper's optimal threshold 0.061)\n", correct, len(cohort), pipeline.Threshold)
}
