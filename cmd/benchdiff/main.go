// Command benchdiff compares two `go test -bench` outputs and exits
// non-zero when the second (HEAD) regresses ns/op by more than
// -threshold percent on any benchmark present in both files. Repeated
// runs of one benchmark (go test -count=N) are folded by taking the
// minimum ns/op — the cost floor is the quantity of interest; the
// mean is polluted by scheduler noise. Benchmarks present on only one
// side are listed and skipped, so renames and additions never trip
// the gate.
//
// Usage: benchdiff [-threshold 15] base.txt head.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// parse returns the per-benchmark minimum ns/op of one output file.
func parse(path string) (map[string]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	min := map[string]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		if prev, ok := min[m[1]]; !ok || ns < prev {
			min[m[1]] = ns
		}
	}
	return min, sc.Err()
}

func main() {
	threshold := flag.Float64("threshold", 15, "allowed ns/op regression in percent")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] base.txt head.txt")
		os.Exit(2)
	}
	base, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	head, err := parse(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	var names []string
	for name := range base {
		if _, ok := head[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var regressions int
	for _, name := range names {
		b, h := base[name], head[name]
		pct := (h - b) / b * 100
		mark := " "
		if pct > *threshold {
			mark = "!"
			regressions++
		}
		fmt.Printf("%s %-60s %12.1f -> %12.1f ns/op  %+7.1f%%\n", mark, name, b, h, pct)
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			fmt.Printf("  %-60s only in baseline (skipped)\n", name)
		}
	}
	for name := range head {
		if _, ok := base[name]; !ok {
			fmt.Printf("  %-60s only in HEAD (skipped)\n", name)
		}
	}

	if len(names) == 0 {
		fmt.Println("benchdiff: no common benchmarks; nothing to gate")
		return
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%%\n",
			regressions, *threshold)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmark(s) within %.0f%%\n", len(names), *threshold)
}
