// Command benchdiff compares two `go test -bench` outputs and exits
// non-zero when the second (HEAD) regresses ns/op on any benchmark
// present in both files. Repeated runs of one benchmark (go test
// -count=N) are folded by taking the median ns/op — the median is
// robust to the occasional scheduler stall in either direction, where
// the minimum systematically favors whichever side got one lucky run.
//
// A regression is flagged only when BOTH the relative and the absolute
// bars are cleared: the median slows down by more than -threshold
// percent AND by more than -floor nanoseconds. The floor keeps
// sub-noise benchmarks (a 3 ns/op atomic-load probe jittering to
// 4 ns/op is +33% but meaningless) from tripping the gate now that it
// blocks merges. Benchmarks present on only one side are listed and
// skipped, so renames and additions never trip the gate.
//
// With -allocs the gate switches to memory mode: the B/op and allocs/op
// columns that `go test -benchmem` emits are compared exactly — no
// threshold, no floor — on every common benchmark whose name matches
// -allocpattern (default "Pooled", the zero-allocation inference hot
// path). Allocation counts are deterministic where timings are not, so
// a single new alloc/op on a pooled hot path fails the gate.
//
// With -md FILE the same comparison is also appended to FILE as a
// GitHub-flavored markdown table — point it at $GITHUB_STEP_SUMMARY and
// the gate's verdict renders on the workflow run page without digging
// through logs. The text output and exit code are unchanged.
//
// Usage: benchdiff [-threshold 15] [-floor 20] [-md summary.md] base.txt head.txt
//
//	benchdiff -allocs [-allocpattern Pooled] [-md summary.md] base.txt head.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9]+) B/op\s+([0-9]+) allocs/op)?`)

// sample is one benchmark line. The memory columns are present only
// when the run used -benchmem.
type sample struct {
	ns            float64
	bytes, allocs float64
	hasMem        bool
}

// parse returns every sample per benchmark in one output file.
func parse(path string) (map[string][]sample, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples := map[string][]sample{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		s := sample{ns: ns}
		if m[3] != "" {
			s.bytes, _ = strconv.ParseFloat(m[3], 64)
			s.allocs, _ = strconv.ParseFloat(m[4], 64)
			s.hasMem = true
		}
		samples[m[1]] = append(samples[m[1]], s)
	}
	return samples, sc.Err()
}

// median folds one benchmark's samples; for even counts it averages the
// middle pair.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func fold(samples map[string][]sample, pick func(sample) float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, xs := range samples {
		vals := make([]float64, len(xs))
		for i, s := range xs {
			vals[i] = pick(s)
		}
		out[name] = median(vals)
	}
	return out
}

// withMem filters to samples carrying -benchmem columns.
func withMem(samples map[string][]sample) map[string][]sample {
	out := map[string][]sample{}
	for name, xs := range samples {
		for _, s := range xs {
			if s.hasMem {
				out[name] = append(out[name], s)
			}
		}
	}
	return out
}

func commonNames(base, head map[string]float64) []string {
	var names []string
	for name := range base {
		if _, ok := head[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// mdWriter accumulates a markdown section and appends it to a summary
// file (GITHUB_STEP_SUMMARY) on flush. A nil receiver is a no-op, so
// call sites need no "-md given?" branches.
type mdWriter struct {
	path  string
	lines []string
}

func newMDWriter(path string) *mdWriter {
	if path == "" {
		return nil
	}
	return &mdWriter{path: path}
}

func (w *mdWriter) add(format string, args ...any) {
	if w == nil {
		return
	}
	w.lines = append(w.lines, fmt.Sprintf(format, args...))
}

func (w *mdWriter) flush() {
	if w == nil {
		return
	}
	f, err := os.OpenFile(w.path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: -md:", err)
		return
	}
	defer f.Close()
	for _, l := range w.lines {
		fmt.Fprintln(f, l)
	}
	fmt.Fprintln(f)
}

// gateAllocs is the -allocs mode: exact B/op and allocs/op comparison
// on pattern-matching benchmarks. Returns the number of regressions.
func gateAllocs(baseSamples, headSamples map[string][]sample, pattern *regexp.Regexp, md *mdWriter) int {
	baseSamples, headSamples = withMem(baseSamples), withMem(headSamples)
	allocs := func(s sample) float64 { return s.allocs }
	bytes := func(s sample) float64 { return s.bytes }
	baseA, headA := fold(baseSamples, allocs), fold(headSamples, allocs)
	baseB, headB := fold(baseSamples, bytes), fold(headSamples, bytes)

	md.add("### Allocation gate (`%s`, exact)", pattern)
	md.add("")
	md.add("| benchmark | allocs/op | B/op | status |")
	md.add("|---|---|---|---|")
	var matched, regressions int
	for _, name := range commonNames(baseA, headA) {
		if !pattern.MatchString(name) {
			continue
		}
		matched++
		mark, status := " ", "ok"
		if headA[name] > baseA[name] || headB[name] > baseB[name] {
			mark, status = "!", "**REGRESSED**"
			regressions++
		}
		fmt.Printf("%s %-60s %8.0f -> %8.0f allocs/op  %10.0f -> %10.0f B/op\n",
			mark, name, baseA[name], headA[name], baseB[name], headB[name])
		md.add("| `%s` | %.0f → %.0f | %.0f → %.0f | %s |",
			name, baseA[name], headA[name], baseB[name], headB[name], status)
	}
	if matched == 0 {
		fmt.Printf("benchdiff: no common -benchmem benchmarks match %q; nothing to gate\n", pattern)
		md.add("")
		md.add("No common `-benchmem` benchmarks matched; nothing gated.")
		md.flush()
		return 0
	}
	if regressions == 0 {
		fmt.Printf("benchdiff: %d benchmark(s) hold their allocation budget exactly\n", matched)
		md.add("")
		md.add("%d benchmark(s) hold their allocation budget exactly.", matched)
	} else {
		md.add("")
		md.add("**%d benchmark(s) allocate more than baseline (zero tolerance).**", regressions)
	}
	md.flush()
	return regressions
}

func main() {
	threshold := flag.Float64("threshold", 15, "allowed ns/op regression in percent")
	floor := flag.Float64("floor", 20, "noise floor: ignore regressions smaller than this many ns/op")
	allocsMode := flag.Bool("allocs", false, "gate B/op and allocs/op exactly instead of ns/op")
	allocPattern := flag.String("allocpattern", "Pooled", "benchmark name regexp the -allocs gate applies to")
	mdPath := flag.String("md", "", "append the comparison as a markdown table to this file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-floor ns] [-md file] [-allocs [-allocpattern re]] base.txt head.txt")
		os.Exit(2)
	}
	md := newMDWriter(*mdPath)
	baseSamples, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	headSamples, err := parse(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}

	if *allocsMode {
		pat, err := regexp.Compile(*allocPattern)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: bad -allocpattern:", err)
			os.Exit(2)
		}
		if n := gateAllocs(baseSamples, headSamples, pat, md); n > 0 {
			fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) allocate more than baseline (zero tolerance)\n", n)
			os.Exit(1)
		}
		return
	}

	ns := func(s sample) float64 { return s.ns }
	base, head := fold(baseSamples, ns), fold(headSamples, ns)
	names := commonNames(base, head)

	md.add("### Benchmark regression gate (threshold %.0f%%, floor %.0f ns/op)", *threshold, *floor)
	md.add("")
	md.add("| benchmark | base ns/op | head ns/op | Δ | status |")
	md.add("|---|---|---|---|---|")
	var regressions int
	for _, name := range names {
		b, h := base[name], head[name]
		pct := (h - b) / b * 100
		mark, status := " ", "ok"
		if pct > *threshold && h-b > *floor {
			mark, status = "!", "**REGRESSED**"
			regressions++
		}
		fmt.Printf("%s %-60s %12.1f -> %12.1f ns/op  %+7.1f%%\n", mark, name, b, h, pct)
		md.add("| `%s` | %.1f | %.1f | %+.1f%% | %s |", name, b, h, pct, status)
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			fmt.Printf("  %-60s only in baseline (skipped)\n", name)
			md.add("| `%s` | — | — | — | only in baseline |", name)
		}
	}
	for name := range head {
		if _, ok := base[name]; !ok {
			fmt.Printf("  %-60s only in HEAD (skipped)\n", name)
			md.add("| `%s` | — | — | — | only in HEAD |", name)
		}
	}

	if len(names) == 0 {
		fmt.Println("benchdiff: no common benchmarks; nothing to gate")
		md.add("")
		md.add("No common benchmarks; nothing gated.")
		md.flush()
		return
	}
	if regressions > 0 {
		md.add("")
		md.add("**%d benchmark(s) regressed more than %.0f%% (and %.0f ns/op).**", regressions, *threshold, *floor)
		md.flush()
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%% (and %.0f ns/op)\n",
			regressions, *threshold, *floor)
		os.Exit(1)
	}
	md.add("")
	md.add("%d benchmark(s) within %.0f%% (floor %.0f ns/op).", len(names), *threshold, *floor)
	md.flush()
	fmt.Printf("benchdiff: %d benchmark(s) within %.0f%% (floor %.0f ns/op)\n",
		len(names), *threshold, *floor)
}
