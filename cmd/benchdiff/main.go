// Command benchdiff compares two `go test -bench` outputs and exits
// non-zero when the second (HEAD) regresses ns/op on any benchmark
// present in both files. Repeated runs of one benchmark (go test
// -count=N) are folded by taking the median ns/op — the median is
// robust to the occasional scheduler stall in either direction, where
// the minimum systematically favors whichever side got one lucky run.
//
// A regression is flagged only when BOTH the relative and the absolute
// bars are cleared: the median slows down by more than -threshold
// percent AND by more than -floor nanoseconds. The floor keeps
// sub-noise benchmarks (a 3 ns/op atomic-load probe jittering to
// 4 ns/op is +33% but meaningless) from tripping the gate now that it
// blocks merges. Benchmarks present on only one side are listed and
// skipped, so renames and additions never trip the gate.
//
// Usage: benchdiff [-threshold 15] [-floor 20] base.txt head.txt
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
)

var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+\d+\s+([0-9.]+) ns/op`)

// parse returns every ns/op sample per benchmark in one output file.
func parse(path string) (map[string][]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	samples := map[string][]float64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		samples[m[1]] = append(samples[m[1]], ns)
	}
	return samples, sc.Err()
}

// median folds one benchmark's samples; for even counts it averages the
// middle pair.
func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func fold(samples map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(samples))
	for name, xs := range samples {
		out[name] = median(xs)
	}
	return out
}

func main() {
	threshold := flag.Float64("threshold", 15, "allowed ns/op regression in percent")
	floor := flag.Float64("floor", 20, "noise floor: ignore regressions smaller than this many ns/op")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold pct] [-floor ns] base.txt head.txt")
		os.Exit(2)
	}
	baseSamples, err := parse(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	headSamples, err := parse(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	base, head := fold(baseSamples), fold(headSamples)

	var names []string
	for name := range base {
		if _, ok := head[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	var regressions int
	for _, name := range names {
		b, h := base[name], head[name]
		pct := (h - b) / b * 100
		mark := " "
		if pct > *threshold && h-b > *floor {
			mark = "!"
			regressions++
		}
		fmt.Printf("%s %-60s %12.1f -> %12.1f ns/op  %+7.1f%%\n", mark, name, b, h, pct)
	}
	for name := range base {
		if _, ok := head[name]; !ok {
			fmt.Printf("  %-60s only in baseline (skipped)\n", name)
		}
	}
	for name := range head {
		if _, ok := base[name]; !ok {
			fmt.Printf("  %-60s only in HEAD (skipped)\n", name)
		}
	}

	if len(names) == 0 {
		fmt.Println("benchdiff: no common benchmarks; nothing to gate")
		return
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d benchmark(s) regressed more than %.0f%% (and %.0f ns/op)\n",
			regressions, *threshold, *floor)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmark(s) within %.0f%% (floor %.0f ns/op)\n",
		len(names), *threshold, *floor)
}
