// Command ccgate fronts N ccserve replicas as one service: a serving
// gateway with active health checking, cache-affine load-aware routing,
// hedged requests, and bounded retries (see internal/cluster).
//
// Usage:
//
//	ccgate -replicas http://h1:8844,http://h2:8844 [-addr :8840] ...
//	ccgate -replicas-file replicas.txt               # one URL per line
//
// SIGHUP rereads -replicas-file and swaps the replica set without a
// restart; SIGINT/SIGTERM drains (stop admitting, finish in-flight
// scans, then shut the listener down).
//
// -shard-slices N enables scatter/gather slice sharding: scans at least
// N slices deep have their enhancement split into chunks fanned out
// across healthy replicas and reassembled in slice order (bit-identical
// to single-replica output), so single-scan latency scales with the
// replica count. -shard-chunk fixes the chunk size; with
// -shard-enhance-slice set, the chunk size comes from the workflow
// latency model instead.
//
// API:
//
//	POST /v1/scan        synchronous: routed, hedged, retried; 200 + result
//	GET  /v1/scan/{id}   re-fetch a finished scan (id form "<id>@<replica>")
//	GET  /v1/replicas    replica set with health, inflight, EWMA latency
//	GET  /healthz /readyz /metrics
package main

import (
	"context"
	"errors"
	"flag"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"computecovid19/internal/cluster"
	"computecovid19/internal/obs"
	"computecovid19/internal/workflow"
)

func main() {
	addr := flag.String("addr", ":8840", "listen address")
	replicas := flag.String("replicas", "", "comma-separated replica base URLs")
	replicasFile := flag.String("replicas-file", "", "file with one replica URL per line (reread on SIGHUP)")
	healthInterval := flag.Duration("health-interval", 500*time.Millisecond, "active /readyz probe period")
	ejectAfter := flag.Int("eject-after", 3, "consecutive failures before ejecting a replica")
	readmitAfter := flag.Int("readmit-after", 2, "consecutive probe successes before readmitting")
	maxRetries := flag.Int("max-retries", 3, "retry budget per scan after the first attempt")
	noHedge := flag.Bool("no-hedge", false, "disable hedged requests")
	hedgeMax := flag.Duration("hedge-max", time.Second, "upper clamp on the adaptive hedge delay")
	deadline := flag.Duration("deadline", 2*time.Minute, "default per-scan deadline (caps retries, hedges, polling)")
	shardSlices := flag.Int("shard-slices", 0, "scatter/gather enhancement for scans at least this many slices deep (0 disables sharding)")
	shardChunk := flag.Int("shard-chunk", 0, "fixed chunk size in slices for sharded scans (0 = auto from healthy replica count)")
	shardEnhanceSlice := flag.Duration("shard-enhance-slice", 0, "measured per-slice enhancement time feeding the chunk-size model (0 = no model)")
	shardChunkOverhead := flag.Duration("shard-chunk-overhead", time.Millisecond, "per-chunk dispatch overhead for the chunk-size model")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max time to finish in-flight scans on shutdown")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address")
	flag.Parse()

	log := obs.Log()
	flush, err := obs.Setup(*tracePath, "", *pprofAddr)
	if err != nil {
		log.Error("telemetry setup failed", "err", err)
		os.Exit(1)
	}

	urls, err := loadReplicaURLs(*replicas, *replicasFile)
	if err != nil {
		log.Error("replica list", "err", err)
		os.Exit(1)
	}

	g, err := cluster.New(cluster.Config{
		Replicas:         urls,
		HealthInterval:   *healthInterval,
		EjectAfter:       *ejectAfter,
		ReadmitAfter:     *readmitAfter,
		MaxRetries:       *maxRetries,
		DisableHedging:   *noHedge,
		HedgeDelayMax:    *hedgeMax,
		DefaultDeadline:  *deadline,
		ShardSlices:      *shardSlices,
		ShardChunkSlices: *shardChunk,
		ShardModel: workflow.ClusterModel{
			Replica:       workflow.ServeModel{EnhanceSlice: *shardEnhanceSlice},
			ChunkOverhead: *shardChunkOverhead,
		},
	})
	if err != nil {
		log.Error("gateway construction failed", "err", err)
		os.Exit(1)
	}
	g.Start()

	if *replicasFile != "" {
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				next, err := loadReplicaURLs("", *replicasFile)
				if err == nil {
					err = g.SetReplicas(next)
				}
				if err != nil {
					// A bad reload keeps the previous set serving.
					log.Error("replica reload rejected", "file", *replicasFile, "err", err)
					continue
				}
				log.Info("replica set reloaded", "file", *replicasFile, "replicas", len(next))
			}
		}()
	}

	httpSrv := &http.Server{Addr: *addr, Handler: g.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go func() {
		<-ctx.Done()
		log.Info("signal received, draining", "timeout", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := g.Drain(drainCtx); err != nil {
			log.Error("drain incomplete", "err", err)
		}
		shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Error("shutdown failed", "err", err)
		}
	}()

	log.Info("gateway serving", "addr", *addr, "replicas", len(urls),
		"hedging", !*noHedge, "max_retries", *maxRetries, "shard_slices", *shardSlices)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("listener failed", "err", err)
		os.Exit(1)
	}
	log.Info("drained and stopped")
	if err := flush(); err != nil {
		os.Exit(1)
	}
}

// loadReplicaURLs resolves the replica list from -replicas (comma list)
// or -replicas-file (one URL per line, #-comments allowed). Exactly one
// source must be given.
func loadReplicaURLs(list, file string) ([]string, error) {
	switch {
	case list != "" && file != "":
		return nil, errors.New("-replicas and -replicas-file are mutually exclusive")
	case list != "":
		return strings.Split(list, ","), nil
	case file != "":
		b, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		var urls []string
		for _, line := range strings.Split(string(b), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			urls = append(urls, line)
		}
		if len(urls) == 0 {
			return nil, errors.New(file + ": no replica URLs")
		}
		return urls, nil
	default:
		return nil, errors.New("need -replicas or -replicas-file")
	}
}
