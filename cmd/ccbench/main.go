// Command ccbench regenerates every table and figure of the paper's
// evaluation section and prints them with the paper's own numbers
// alongside, so shape agreement can be read off directly.
//
// Usage:
//
//	ccbench [-quick] [-only table3] [-seed 1]
//
// The full run trains the demo-scale networks and takes a few minutes on
// one CPU; -quick halves the training budgets.
//
// Telemetry: -trace writes a Chrome trace_event JSON of the whole
// benchmark run, -metrics a Prometheus text (or .json) dump — the
// machine-readable source for BENCH_*.json trajectories — and -pprof
// serves net/http/pprof for live profiling.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"computecovid19/internal/experiments"
	"computecovid19/internal/obs"
)

func main() {
	quick := flag.Bool("quick", false, "reduced-scale run (same settings as the test suite)")
	only := flag.String("only", "", "comma-separated subset, e.g. table3,figure13")
	seed := flag.Int64("seed", 1, "experiment seed")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file on exit")
	metricsPath := flag.String("metrics", "", "write metrics on exit (.json = JSON dump, else Prometheus text)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	serveOut := flag.String("serveout", "", "write the serving benchmark's machine-readable report here (BENCH_serve.json)")
	kernelsOut := flag.String("kernelsout", "", "write the kernel ladder benchmark's machine-readable report here (BENCH_kernels.json)")
	clusterOut := flag.String("clusterout", "", "write the cluster benchmark's machine-readable report here (BENCH_cluster.json)")
	shardOut := flag.String("shardout", "", "write the sharding benchmark's machine-readable report here (BENCH_shard.json)")
	memOut := flag.String("memout", "", "write the memory benchmark's machine-readable report here (BENCH_mem.json)")
	flag.Parse()

	log := obs.Log()
	flush, err := obs.Setup(*tracePath, *metricsPath, *pprofAddr)
	if err != nil {
		log.Error("telemetry setup failed", "err", err)
		os.Exit(1)
	}
	// flush errors (an unwritable trace/metrics file) must fail the run.
	defer func() {
		if err := flush(); err != nil {
			os.Exit(1)
		}
	}()

	cfg := experiments.DefaultConfig()
	if *quick {
		cfg = experiments.QuickConfig()
	}
	cfg.Seed = *seed

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.ToLower(strings.TrimSpace(name))] = true
		}
	}
	sel := func(name string) bool { return len(want) == 0 || want[name] }

	// The accuracy bundle is shared by table8/table9/figure11/12/13.
	var acc *experiments.AccuracyResult
	needAcc := sel("table8") || sel("table9") || sel("figure11") || sel("figure12") || sel("figure13")
	if needAcc {
		log.Info("running the accuracy experiment (trains DDnet + classifier)")
		start := time.Now()
		acc = experiments.RunAccuracy(cfg)
		log.Info("accuracy experiment done", "elapsed", time.Since(start).Round(time.Second))
	}

	type item struct {
		name string
		run  func() string
	}
	items := []item{
		{"table1", func() string { return experiments.Table1(cfg) }},
		{"table2", func() string { return experiments.Table2(cfg) }},
		{"table3", func() string { return experiments.Table3(cfg) }},
		{"table4", func() string { return experiments.Table4(cfg) }},
		{"table5", func() string { return experiments.Table5(cfg) }},
		{"table6", func() string { return experiments.Table6(cfg) }},
		{"table7", func() string { return experiments.Table7(cfg) }},
		{"table8", func() string { return experiments.Table8(acc) }},
		{"table9", func() string { return experiments.Table9(acc) }},
		{"table10", func() string { return experiments.Table10(cfg) }},
		{"figure2", func() string { return experiments.Figure2(cfg) }},
		{"figure8", func() string { return experiments.Figure8(cfg) }},
		{"figure11", func() string { return experiments.Figure11(acc) }},
		{"figure12", func() string { return experiments.Figure12(acc) }},
		{"figure13", func() string { return experiments.Figure13(acc) }},
		{"timings", func() string { return experiments.SectionTimings(cfg) }},
		{"turnaround", func() string { return experiments.Turnaround(cfg) }},
		{"ablation", func() string { return experiments.Ablation(cfg) }},
		{"dimensionality", func() string { return experiments.Dimensionality(cfg) }},
		{"serve", func() string { return experiments.ServeBench(cfg, *serveOut) }},
		{"kernels", func() string { return experiments.KernelsBench(cfg, *kernelsOut) }},
		{"cluster", func() string { return experiments.ClusterBench(cfg, *clusterOut) }},
		{"shard", func() string { return experiments.ShardBench(cfg, *shardOut) }},
		{"mem", func() string { return experiments.MemBench(cfg, *memOut) }},
	}
	for _, it := range items {
		if !sel(it.name) {
			continue
		}
		fmt.Println(it.run())
		fmt.Println()
	}
}
