package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunWritesAllImages(t *testing.T) {
	dir := t.TempDir()
	if err := run(32, 60, 48, 1e6, 0.1, 1, 7, dir); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"phantom.png", "sinogram.png", "fbp_fulldose.png", "fbp_lowdose.png", "absdiff.png",
	} {
		info, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("missing %s: %v", name, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", name)
		}
	}
}

func TestRunHealthyPhantom(t *testing.T) {
	dir := t.TempDir()
	if err := run(24, 40, 32, 1e5, 0.25, 0, 8, dir); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadOutputDir(t *testing.T) {
	if err := run(16, 20, 16, 1e5, 0.5, 0, 9, "/proc/definitely/not/writable"); err == nil {
		t.Fatal("expected error for unwritable output directory")
	}
}
