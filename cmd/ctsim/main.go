// Command ctsim runs the paper's §3.1.2 low-dose CT simulation on a
// synthetic chest phantom and writes the intermediate images as PNGs:
// the phantom, the fan-beam sinogram, and FBP reconstructions at full
// and reduced dose, plus the absolute difference map (Figures 8 and 12's
// raw material).
//
// Usage:
//
//	ctsim [-size 256] [-views 360] [-det 512] [-photons 1e6] [-dose 0.05]
//	      [-lesions 2] [-seed 1] [-out ./out]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"computecovid19/internal/ctsim"
	"computecovid19/internal/phantom"
	"computecovid19/internal/volume"
)

func main() {
	size := flag.Int("size", 256, "phantom size in pixels")
	views := flag.Int("views", 360, "projection views over 360°")
	det := flag.Int("det", 512, "detector pixels")
	photons := flag.Float64("photons", 1e6, "blank-scan photons per ray (paper: 1e6)")
	dose := flag.Float64("dose", 0.05, "low-dose fraction of -photons")
	lesions := flag.Int("lesions", 2, "number of COVID-like lesions (0 = healthy)")
	seed := flag.Int64("seed", 1, "phantom seed")
	out := flag.String("out", ".", "output directory")
	depth := flag.Int("depth", 0, "also write a 3D phantom volume (scan.ccvol) with this many slices")
	flag.Parse()

	if err := run(*size, *views, *det, *photons, *dose, *lesions, *seed, *out); err != nil {
		log.Fatal(err)
	}
	if *depth > 0 {
		if err := writeVolume(*size, *depth, *lesions, *seed, *out); err != nil {
			log.Fatal(err)
		}
	}
}

// writeVolume renders a 3D phantom and stores it as a .ccvol file that
// cmd/ccovid can diagnose with -input.
func writeVolume(size, depth, lesions int, seed int64, out string) error {
	rng := rand.New(rand.NewSource(seed))
	chest := phantom.NewChest(rng, size, depth)
	if lesions > 0 {
		chest.AddRandomLesions(rng, lesions, 0.9)
	}
	v := volume.New(depth, size, size)
	for z := 0; z < depth; z++ {
		copy(v.Slice(z), chest.SliceHU(z))
	}
	path := filepath.Join(out, "scan.ccvol")
	if err := v.SaveFile(path); err != nil {
		return err
	}
	fmt.Println("wrote", path)
	return nil
}

func run(size, views, det int, photons, dose float64, lesions int, seed int64, out string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(seed))
	chest := phantom.NewChest(rng, size, 1)
	if lesions > 0 {
		chest.AddRandomLesions(rng, lesions, 0.9)
	}
	hu := chest.SliceHU(0)

	grid := ctsim.Grid{Size: size, PixelSize: 360.0 / float64(size)}
	fan := ctsim.PaperFanGeometry(grid.FOV())
	fan.NumViews = views
	fan.NumDetectors = det
	fan.DetectorSpacing = grid.FOV() * 1.5 * (fan.SDD / fan.SOD) / float64(det)

	fmt.Printf("phantom: %dx%d px, %d lesions; fan beam SOD %.0f mm SDD %.0f mm, %d views x %d detectors\n",
		size, size, lesions, fan.SOD, fan.SDD, views, det)

	mu := ctsim.HUImageToMu(hu)
	sino := ctsim.ForwardProjectFan(grid, mu, fan)

	save := func(name string, img []float32, h, w int, lo, hi float64) error {
		v := volume.FromSlices(h, w, img)
		path := filepath.Join(out, name)
		if err := v.SavePNG(path, 0, lo, hi); err != nil {
			return err
		}
		fmt.Println("wrote", path)
		return nil
	}

	if err := save("phantom.png", hu, size, size, -1000, 500); err != nil {
		return err
	}

	// Sinogram image (views × detectors).
	sg := make([]float32, len(sino.Data))
	maxL := 0.0
	for _, l := range sino.Data {
		if l > maxL {
			maxL = l
		}
	}
	for i, l := range sino.Data {
		sg[i] = float32(l)
	}
	if err := save("sinogram.png", sg, sino.Views, sino.Det, 0, maxL); err != nil {
		return err
	}

	recon := func(b float64, name string) ([]float32, error) {
		noisy := ctsim.ApplyPoissonNoise(sino, b, rng)
		rec := ctsim.MuImageToHU(ctsim.ReconstructFan(noisy, grid, fan, ctsim.RamLak))
		return rec, save(name, rec, size, size, -1000, 500)
	}
	full, err := recon(photons, "fbp_fulldose.png")
	if err != nil {
		return err
	}
	low, err := recon(photons*dose, "fbp_lowdose.png")
	if err != nil {
		return err
	}

	diff := make([]float32, len(full))
	var maxDiff float32
	for i := range diff {
		d := low[i] - full[i]
		if d < 0 {
			d = -d
		}
		diff[i] = d
		if d > maxDiff {
			maxDiff = d
		}
	}
	if err := save("absdiff.png", diff, size, size, 0, float64(maxDiff)); err != nil {
		return err
	}
	fmt.Printf("low-dose noise: max |Δ| = %.0f HU\n", maxDiff)
	return nil
}
