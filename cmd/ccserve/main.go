// Command ccserve runs the ComputeCOVID19+ pipeline as a batched
// inference service: an HTTP/JSON API backed by a warm worker pool, a
// micro-batching scheduler for Enhancement AI, bounded-queue admission
// control, and a content-addressed result cache.
//
// Usage:
//
//	ccserve [-addr :8844] [-workers 4] [-queue 128] [-batch 8] ...
//
// API:
//
//	POST /v1/scan        {"d":8,"h":32,"w":32,"data":[...HU...]}  → 202 {"id":...}
//	GET  /v1/scan/{id}                                            → job state + result
//	GET  /healthz /readyz /metrics
//
// Overload answers 429 with Retry-After; SIGINT/SIGTERM triggers a
// graceful drain (stop admitting, finish every accepted scan, then shut
// the listener down).
//
// The demo binary serves randomly-initialized demo-scale networks — it
// demonstrates the serving architecture, not trained diagnosis; training
// is cmd/cctrain's job.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/obs"
	"computecovid19/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8844", "listen address")
	workers := flag.Int("workers", 4, "pipeline worker replicas")
	queue := flag.Int("queue", 128, "admission queue depth (full queue answers 429)")
	batch := flag.Int("batch", 8, "enhancement micro-batch size")
	batchTimeout := flag.Duration("batch-timeout", 2*time.Millisecond, "micro-batch fill timeout")
	cacheSize := flag.Int("cache", 256, "result cache entries (negative disables)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max time to finish accepted scans on shutdown")
	enhance := flag.Bool("enhance", true, "serve with Enhancement AI (false = segment+classify only)")
	seed := flag.Int64("seed", 1, "demo-weight initialization seed")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address")
	flag.Parse()

	flush, err := obs.Setup(*tracePath, "", *pprofAddr)
	if err != nil {
		log.Fatalf("ccserve: %v", err)
	}
	defer flush()

	rng := rand.New(rand.NewSource(*seed))
	var enhancer *ddnet.DDnet
	if *enhance {
		enhancer = ddnet.New(rng, ddnet.TinyConfig())
	}
	pipeline := core.NewPipeline(enhancer, classify.New(rng, classify.SmallConfig()))

	s, err := serve.New(serve.Config{
		Pipeline:        pipeline,
		Workers:         *workers,
		QueueDepth:      *queue,
		BatchSize:       *batch,
		BatchTimeout:    *batchTimeout,
		CacheSize:       *cacheSize,
		DefaultDeadline: *deadline,
		ModelVersion:    fmt.Sprintf("demo-seed%d", *seed),
	})
	if err != nil {
		log.Fatalf("ccserve: %v", err)
	}
	s.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go func() {
		<-ctx.Done()
		log.Printf("ccserve: signal received, draining (up to %v)...", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Drain first so clients can still poll for their results while
		// accepted scans finish; then close the listener.
		if err := s.Drain(drainCtx); err != nil {
			log.Printf("ccserve: drain: %v", err)
		}
		shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("ccserve: shutdown: %v", err)
		}
	}()

	log.Printf("ccserve: serving on %s (workers=%d queue=%d batch=%d cache=%d enhance=%v)",
		*addr, *workers, *queue, *batch, *cacheSize, *enhance)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("ccserve: %v", err)
	}
	log.Printf("ccserve: drained and stopped")
}
