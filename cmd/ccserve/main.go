// Command ccserve runs the ComputeCOVID19+ pipeline as a batched
// inference service: an HTTP/JSON API backed by a warm worker pool, a
// micro-batching scheduler for Enhancement AI, bounded-queue admission
// control, and a content-addressed result cache.
//
// Usage:
//
//	ccserve [-addr :8844] [-workers 4] [-queue 128] [-batch 8] ...
//
// API:
//
//	POST /v1/scan        {"d":8,"h":32,"w":32,"data":[...HU...]}  → 202 {"id":...}
//	GET  /v1/scan/{id}                                            → job state + result
//	GET  /healthz /readyz /metrics
//
// Overload answers 429 with Retry-After; SIGINT/SIGTERM triggers a
// graceful drain (stop admitting, finish every accepted scan, then shut
// the listener down).
//
// The demo binary serves randomly-initialized demo-scale networks — it
// demonstrates the serving architecture, not trained diagnosis; training
// is cmd/cctrain's job.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/obs"
	"computecovid19/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8844", "listen address")
	workers := flag.Int("workers", 4, "pipeline worker replicas")
	queue := flag.Int("queue", 128, "admission queue depth (full queue answers 429)")
	batch := flag.Int("batch", 8, "enhancement micro-batch size")
	batchTimeout := flag.Duration("batch-timeout", 2*time.Millisecond, "micro-batch fill timeout")
	cacheSize := flag.Int("cache", 256, "result cache entries (negative disables)")
	deadline := flag.Duration("deadline", 0, "default per-request deadline (0 = none)")
	drainTimeout := flag.Duration("drain-timeout", 60*time.Second, "max time to finish accepted scans on shutdown")
	enhance := flag.Bool("enhance", true, "serve with Enhancement AI (false = segment+classify only)")
	seed := flag.Int64("seed", 1, "demo-weight initialization seed")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address")
	flightDir := flag.String("flight-dir", "", "flight-recorder dump directory (enables tracing; dumps on SIGQUIT, deadline-exceeded, and 5xx)")
	sloLatency := flag.Duration("slo-latency", 2*time.Second, "SLO: good-request latency threshold for /v1/scan")
	sloObjective := flag.Float64("slo-objective", 0.95, "SLO: target fraction of requests under the latency threshold")
	sloWindow := flag.Duration("slo-window", time.Hour, "SLO: error-budget accounting window")
	flag.Parse()

	log := obs.Log()
	flush, err := obs.Setup(*tracePath, "", *pprofAddr)
	if err != nil {
		log.Error("telemetry setup failed", "err", err)
		os.Exit(1)
	}
	if *flightDir != "" {
		// The flight recorder needs span collection even when no trace
		// file was requested.
		obs.Enable()
		defer obs.DumpFlightOnSignal(*flightDir)()
	}

	rng := rand.New(rand.NewSource(*seed))
	var enhancer *ddnet.DDnet
	if *enhance {
		enhancer = ddnet.New(rng, ddnet.TinyConfig())
	}
	pipeline := core.NewPipeline(enhancer, classify.New(rng, classify.SmallConfig()))

	s, err := serve.New(serve.Config{
		Pipeline:        pipeline,
		Workers:         *workers,
		QueueDepth:      *queue,
		BatchSize:       *batch,
		BatchTimeout:    *batchTimeout,
		CacheSize:       *cacheSize,
		DefaultDeadline: *deadline,
		ModelVersion:    fmt.Sprintf("demo-seed%d", *seed),
		FlightDir:       *flightDir,
		SLO: obs.SLOConfig{
			LatencyThreshold: *sloLatency,
			LatencyObjective: *sloObjective,
			Window:           *sloWindow,
		},
	})
	if err != nil {
		log.Error("server construction failed", "err", err)
		os.Exit(1)
	}
	s.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: s.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	go func() {
		<-ctx.Done()
		log.Info("signal received, draining", "timeout", *drainTimeout)
		drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		// Drain first so clients can still poll for their results while
		// accepted scans finish; then close the listener.
		if err := s.Drain(drainCtx); err != nil {
			log.Error("drain incomplete", "err", err)
		}
		shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel2()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Error("shutdown failed", "err", err)
		}
	}()

	log.Info("serving", "addr", *addr, "workers", *workers, "queue", *queue,
		"batch", *batch, "cache", *cacheSize, "enhance", *enhance, "flight_dir", *flightDir)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Error("listener failed", "err", err)
		os.Exit(1)
	}
	log.Info("drained and stopped")
	// A run whose requested telemetry could not be written must not
	// exit clean.
	if err := flush(); err != nil {
		os.Exit(1)
	}
}
