// Command cctrain trains the two learned stages of ComputeCOVID19+ on
// synthetic data and saves the model files that cmd/ccovid loads.
//
// Usage:
//
//	cctrain -what enhancer  [-epochs 12] [-size 32] [-count 20] -out enhancer.cc19
//	cctrain -what classifier [-epochs 16] [-size 32] [-count 24] -out classifier.cc19
//
// Telemetry: -trace writes a Chrome trace_event JSON file of the
// training run (per-step and per-layer spans), -metrics a Prometheus
// text (or .json) dump including train_step_seconds and the step-loss
// gauge, -pprof serves net/http/pprof for live profiling.
//
// Fault tolerance (classifier only): -nodes N trains with N data-
// parallel ranks; -ckptdir enables periodic CRC-checked checkpoints
// (-ckpt-every steps, -ckpt-keep retained) and elastic recovery from
// rank failures; -resume restores the latest checkpoint in -ckptdir and
// continues bit-identically to an uninterrupted run.
package main

import (
	"flag"
	"math/rand"
	"os"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/nn"
	"computecovid19/internal/obs"
)

func main() {
	what := flag.String("what", "enhancer", "enhancer | classifier")
	epochs := flag.Int("epochs", 12, "training epochs")
	size := flag.Int("size", 32, "image / volume size (pixels)")
	depth := flag.Int("depth", 8, "volume depth (classifier only)")
	count := flag.Int("count", 20, "training samples")
	seed := flag.Int64("seed", 1, "seed")
	out := flag.String("out", "", "output model path (.cc19)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file on exit")
	metricsPath := flag.String("metrics", "", "write metrics on exit (.json = JSON dump, else Prometheus text)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	nodes := flag.Int("nodes", 1, "data-parallel ranks (classifier only)")
	ckptDir := flag.String("ckptdir", "", "checkpoint directory; enables fault-tolerant elastic training (classifier only)")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint period in optimizer steps (0 = default)")
	ckptKeep := flag.Int("ckpt-keep", 0, "checkpoints retained (0 = default, negative = all)")
	resume := flag.Bool("resume", false, "resume from the latest checkpoint in -ckptdir (bit-identical continuation)")
	flag.Parse()
	log := obs.Log()
	if *out == "" {
		log.Error("-out is required")
		os.Exit(2)
	}

	flush, err := obs.Setup(*tracePath, *metricsPath, *pprofAddr)
	if err != nil {
		log.Error("telemetry setup failed", "err", err)
		os.Exit(1)
	}
	// flush errors (an unwritable trace/metrics file) must fail the run.
	defer func() {
		if err := flush(); err != nil {
			os.Exit(1)
		}
	}()

	switch *what {
	case "enhancer":
		if *nodes > 1 || *ckptDir != "" {
			log.Error("-nodes/-ckptdir apply to -what classifier only")
			os.Exit(2)
		}
		trainEnhancer(*epochs, *size, *count, *seed, *out)
	case "classifier":
		if *ckptDir != "" || *nodes > 1 {
			trainClassifierElastic(*epochs, *size, *depth, *count, *seed, *out, *nodes, elasticFlags{
				dir: *ckptDir, every: *ckptEvery, keep: *ckptKeep, resume: *resume,
			})
		} else {
			trainClassifier(*epochs, *size, *depth, *count, *seed, *out)
		}
	default:
		log.Error("unknown -what", "what", *what)
		os.Exit(2)
	}
}

type elasticFlags struct {
	dir    string
	every  int
	keep   int
	resume bool
}

func trainEnhancer(epochs, size, count int, seed int64, out string) {
	cfg := dataset.DefaultEnhancementConfig()
	cfg.Size = size
	cfg.Count = count
	cfg.Views = 120
	cfg.Detectors = 64
	cfg.DoseDivisor = 1e4
	cfg.Seed = seed
	log := obs.Log()
	log.Info("building enhancement pairs", "count", count, "size", size)
	pairs := dataset.BuildEnhancement(cfg)

	m := ddnet.New(rand.New(rand.NewSource(seed)), ddnet.TinyConfig())
	tc := core.DefaultEnhancerTraining()
	tc.Epochs = epochs
	tc.Seed = seed
	log.Info("training DDnet", "params", nn.NumParams(m.Params()), "epochs", epochs)
	curve := core.TrainEnhancer(m, pairs, tc)
	log.Info("enhancer trained", "loss_first", curve[0], "loss_last", curve[len(curve)-1])

	mseYX, ssYX, mseYFX, ssYFX := core.EvaluateEnhancer(m, pairs)
	log.Info("train-set Table 8", "mse_yx", mseYX, "msssim_yx", ssYX, "mse_yfx", mseYFX, "msssim_yfx", ssYFX)

	if err := nn.SaveModuleFile(out, m); err != nil {
		log.Error("saving model failed", "path", out, "err", err)
		os.Exit(1)
	}
	log.Info("saved model", "path", out)
}

func trainClassifierElastic(epochs, size, depth, count int, seed int64, out string, nodes int, ef elasticFlags) {
	if nodes < 1 {
		nodes = 1
	}
	cfg := dataset.DefaultCohortConfig()
	cfg.Size = size
	cfg.Depth = depth
	cfg.Count = count
	cfg.Seed = seed
	log := obs.Log()
	log.Info("building cohort", "count", count, "depth", depth, "size", size)
	cases := dataset.BuildCohort(cfg)

	factory := func() *classify.Classifier {
		return classify.New(rand.New(rand.NewSource(seed)), classify.SmallConfig())
	}
	tc := core.DefaultClassifierTraining()
	tc.Epochs = epochs
	tc.LR = 5e-3
	tc.Augment = false
	tc.Seed = seed
	log.Info("training 3D DenseNet (elastic)", "params", nn.NumParams(factory().Params()),
		"ranks", nodes, "ckptdir", ef.dir)
	c, res, err := core.TrainClassifierDDPElastic(factory, cases, tc, nodes, core.DDPFaultConfig{
		CheckpointDir:   ef.dir,
		CheckpointEvery: ef.every,
		Keep:            ef.keep,
		Resume:          ef.resume,
	})
	if err != nil {
		log.Error("elastic training failed", "err", err)
		os.Exit(1)
	}
	if res.FirstStep > 0 {
		log.Info("resumed from checkpoint", "step", res.FirstStep)
	}
	if len(res.Losses) > 0 {
		log.Info("classifier trained", "loss_first", res.Losses[0],
			"loss_last", res.Losses[len(res.Losses)-1], "first_step", res.FirstStep, "steps", res.Steps)
	}
	for _, ev := range res.Recoveries {
		log.Info("recovery", "dead_ranks", ev.DeadRanks, "failed_step", ev.FailedStep,
			"restored_step", ev.RestoredStep, "steps_replayed", ev.StepsLost,
			"seconds", ev.Seconds, "ranks_continue", ev.Nodes)
	}

	p := core.NewPipeline(nil, c)
	ev := core.EvaluateCohort(p, cases)
	log.Info("train-set evaluation", "accuracy", ev.Accuracy, "auc", ev.AUC)

	if err := nn.SaveModuleFile(out, c); err != nil {
		log.Error("saving model failed", "path", out, "err", err)
		os.Exit(1)
	}
	log.Info("saved model", "path", out)
}

func trainClassifier(epochs, size, depth, count int, seed int64, out string) {
	cfg := dataset.DefaultCohortConfig()
	cfg.Size = size
	cfg.Depth = depth
	cfg.Count = count
	cfg.Seed = seed
	log := obs.Log()
	log.Info("building cohort", "count", count, "depth", depth, "size", size)
	cases := dataset.BuildCohort(cfg)

	c := classify.New(rand.New(rand.NewSource(seed)), classify.SmallConfig())
	tc := core.DefaultClassifierTraining()
	tc.Epochs = epochs
	tc.LR = 5e-3
	tc.Augment = false
	tc.Seed = seed
	log.Info("training 3D DenseNet", "params", nn.NumParams(c.Params()), "epochs", epochs)
	curve := core.TrainClassifier(c, cases, tc)
	log.Info("classifier trained", "loss_first", curve[0], "loss_last", curve[len(curve)-1])

	p := core.NewPipeline(nil, c)
	ev := core.EvaluateCohort(p, cases)
	log.Info("train-set evaluation", "accuracy", ev.Accuracy, "auc", ev.AUC)

	if err := nn.SaveModuleFile(out, c); err != nil {
		log.Error("saving model failed", "path", out, "err", err)
		os.Exit(1)
	}
	log.Info("saved model", "path", out)
}
