// Command cctrain trains the two learned stages of ComputeCOVID19+ on
// synthetic data and saves the model files that cmd/ccovid loads.
//
// Usage:
//
//	cctrain -what enhancer  [-epochs 12] [-size 32] [-count 20] -out enhancer.cc19
//	cctrain -what classifier [-epochs 16] [-size 32] [-count 24] -out classifier.cc19
//
// Telemetry: -trace writes a Chrome trace_event JSON file of the
// training run (per-step and per-layer spans), -metrics a Prometheus
// text (or .json) dump including train_step_seconds and the step-loss
// gauge, -pprof serves net/http/pprof for live profiling.
//
// Fault tolerance (classifier only): -nodes N trains with N data-
// parallel ranks; -ckptdir enables periodic CRC-checked checkpoints
// (-ckpt-every steps, -ckpt-keep retained) and elastic recovery from
// rank failures; -resume restores the latest checkpoint in -ckptdir and
// continues bit-identically to an uninterrupted run.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/nn"
	"computecovid19/internal/obs"
)

func main() {
	what := flag.String("what", "enhancer", "enhancer | classifier")
	epochs := flag.Int("epochs", 12, "training epochs")
	size := flag.Int("size", 32, "image / volume size (pixels)")
	depth := flag.Int("depth", 8, "volume depth (classifier only)")
	count := flag.Int("count", 20, "training samples")
	seed := flag.Int64("seed", 1, "seed")
	out := flag.String("out", "", "output model path (.cc19)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file on exit")
	metricsPath := flag.String("metrics", "", "write metrics on exit (.json = JSON dump, else Prometheus text)")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	nodes := flag.Int("nodes", 1, "data-parallel ranks (classifier only)")
	ckptDir := flag.String("ckptdir", "", "checkpoint directory; enables fault-tolerant elastic training (classifier only)")
	ckptEvery := flag.Int("ckpt-every", 0, "checkpoint period in optimizer steps (0 = default)")
	ckptKeep := flag.Int("ckpt-keep", 0, "checkpoints retained (0 = default, negative = all)")
	resume := flag.Bool("resume", false, "resume from the latest checkpoint in -ckptdir (bit-identical continuation)")
	flag.Parse()
	if *out == "" {
		log.Fatal("cctrain: -out is required")
	}

	flush, err := obs.Setup(*tracePath, *metricsPath, *pprofAddr)
	if err != nil {
		log.Fatalf("cctrain: %v", err)
	}
	defer flush()

	switch *what {
	case "enhancer":
		if *nodes > 1 || *ckptDir != "" {
			log.Fatal("cctrain: -nodes/-ckptdir apply to -what classifier only")
		}
		trainEnhancer(*epochs, *size, *count, *seed, *out)
	case "classifier":
		if *ckptDir != "" || *nodes > 1 {
			trainClassifierElastic(*epochs, *size, *depth, *count, *seed, *out, *nodes, elasticFlags{
				dir: *ckptDir, every: *ckptEvery, keep: *ckptKeep, resume: *resume,
			})
		} else {
			trainClassifier(*epochs, *size, *depth, *count, *seed, *out)
		}
	default:
		log.Fatalf("cctrain: unknown -what %q", *what)
	}
}

type elasticFlags struct {
	dir    string
	every  int
	keep   int
	resume bool
}

func trainEnhancer(epochs, size, count int, seed int64, out string) {
	cfg := dataset.DefaultEnhancementConfig()
	cfg.Size = size
	cfg.Count = count
	cfg.Views = 120
	cfg.Detectors = 64
	cfg.DoseDivisor = 1e4
	cfg.Seed = seed
	fmt.Printf("building %d clean/low-dose pairs at %d px...\n", count, size)
	pairs := dataset.BuildEnhancement(cfg)

	m := ddnet.New(rand.New(rand.NewSource(seed)), ddnet.TinyConfig())
	tc := core.DefaultEnhancerTraining()
	tc.Epochs = epochs
	tc.Seed = seed
	fmt.Printf("training DDnet (%d params) for %d epochs...\n", nn.NumParams(m.Params()), epochs)
	curve := core.TrainEnhancer(m, pairs, tc)
	fmt.Printf("loss: %.5f -> %.5f\n", curve[0], curve[len(curve)-1])

	mseYX, ssYX, mseYFX, ssYFX := core.EvaluateEnhancer(m, pairs)
	fmt.Printf("train-set Table 8: Y-X mse %.5f msssim %.2f%% | Y-f(X) mse %.5f msssim %.2f%%\n",
		mseYX, ssYX*100, mseYFX, ssYFX*100)

	if err := nn.SaveModuleFile(out, m); err != nil {
		log.Fatal(err)
	}
	fmt.Println("saved", out)
}

func trainClassifierElastic(epochs, size, depth, count int, seed int64, out string, nodes int, ef elasticFlags) {
	if nodes < 1 {
		nodes = 1
	}
	cfg := dataset.DefaultCohortConfig()
	cfg.Size = size
	cfg.Depth = depth
	cfg.Count = count
	cfg.Seed = seed
	fmt.Printf("building %d labelled volumes (%dx%dx%d)...\n", count, depth, size, size)
	cases := dataset.BuildCohort(cfg)

	factory := func() *classify.Classifier {
		return classify.New(rand.New(rand.NewSource(seed)), classify.SmallConfig())
	}
	tc := core.DefaultClassifierTraining()
	tc.Epochs = epochs
	tc.LR = 5e-3
	tc.Augment = false
	tc.Seed = seed
	fmt.Printf("training 3D DenseNet (%d params) on %d rank(s), checkpoints in %q...\n",
		nn.NumParams(factory().Params()), nodes, ef.dir)
	c, res, err := core.TrainClassifierDDPElastic(factory, cases, tc, nodes, core.DDPFaultConfig{
		CheckpointDir:   ef.dir,
		CheckpointEvery: ef.every,
		Keep:            ef.keep,
		Resume:          ef.resume,
	})
	if err != nil {
		log.Fatalf("cctrain: elastic training failed: %v", err)
	}
	if res.FirstStep > 0 {
		fmt.Printf("resumed from step %d\n", res.FirstStep)
	}
	if len(res.Losses) > 0 {
		fmt.Printf("loss: %.5f -> %.5f over steps %d..%d\n",
			res.Losses[0], res.Losses[len(res.Losses)-1], res.FirstStep, res.Steps)
	}
	for _, ev := range res.Recoveries {
		fmt.Printf("recovery: rank(s) %v died at step %d; restored step %d (%d steps replayed) in %.3fs, %d rank(s) continue\n",
			ev.DeadRanks, ev.FailedStep, ev.RestoredStep, ev.StepsLost, ev.Seconds, ev.Nodes)
	}

	p := core.NewPipeline(nil, c)
	ev := core.EvaluateCohort(p, cases)
	fmt.Printf("train-set accuracy %.1f%%, AUC %.3f\n", ev.Accuracy*100, ev.AUC)

	if err := nn.SaveModuleFile(out, c); err != nil {
		log.Fatal(err)
	}
	fmt.Println("saved", out)
}

func trainClassifier(epochs, size, depth, count int, seed int64, out string) {
	cfg := dataset.DefaultCohortConfig()
	cfg.Size = size
	cfg.Depth = depth
	cfg.Count = count
	cfg.Seed = seed
	fmt.Printf("building %d labelled volumes (%dx%dx%d)...\n", count, depth, size, size)
	cases := dataset.BuildCohort(cfg)

	c := classify.New(rand.New(rand.NewSource(seed)), classify.SmallConfig())
	tc := core.DefaultClassifierTraining()
	tc.Epochs = epochs
	tc.LR = 5e-3
	tc.Augment = false
	tc.Seed = seed
	fmt.Printf("training 3D DenseNet (%d params) for %d epochs...\n", nn.NumParams(c.Params()), epochs)
	curve := core.TrainClassifier(c, cases, tc)
	fmt.Printf("loss: %.5f -> %.5f\n", curve[0], curve[len(curve)-1])

	p := core.NewPipeline(nil, c)
	ev := core.EvaluateCohort(p, cases)
	fmt.Printf("train-set accuracy %.1f%%, AUC %.3f\n", ev.Accuracy*100, ev.AUC)

	if err := nn.SaveModuleFile(out, c); err != nil {
		log.Fatal(err)
	}
	fmt.Println("saved", out)
}
