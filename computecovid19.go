// Package computecovid19 is a from-scratch Go reproduction of
// "ComputeCOVID19+: Accelerating COVID-19 Diagnosis and Monitoring via
// High-Performance Deep Learning on CT Images" (Goel et al., ICPP 2021).
//
// It provides the paper's full stack with no dependencies beyond the
// standard library:
//
//   - DDnet, the DenseNet + Deconvolution enhancement network, with a
//     tape-based autograd engine, Adam, and the composite
//     MSE + 0.1·(1−MS-SSIM) loss (internal/ddnet, internal/ag,
//     internal/nn);
//   - the CT physics used to simulate low-dose scans: Siddon ray-driven
//     fan-beam projection, Beer's-law Poisson noise, and filtered back
//     projection (internal/ctsim, internal/phantom);
//   - lung segmentation and a 3D DenseNet classifier
//     (internal/segment, internal/classify);
//   - the OpenCL-style inference kernels with the paper's optimization
//     ladder and operation counters, plus a roofline model of the six
//     evaluation platforms (internal/kernels, internal/device);
//   - synchronous data-parallel training with a ring all-reduce
//     (internal/distrib);
//   - and a per-table/per-figure experiment harness
//     (internal/experiments) driven by cmd/ccbench and the root
//     benchmarks.
//
// This facade re-exports the pipeline-level API so the examples and
// external tools have one import path; the subsystem packages remain the
// source of truth.
package computecovid19

import (
	"math/rand"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/volume"
)

// Pipeline is the ComputeCOVID19+ diagnostic pipeline: Enhancement AI →
// Segmentation AI → Classification AI.
type Pipeline = core.Pipeline

// Result is one scan's diagnosis.
type Result = core.Result

// Volume is a 3D CT volume in Hounsfield units.
type Volume = volume.Volume

// Case is a labelled scan of a synthetic cohort.
type Case = dataset.Case

// EnhancementPair is a clean/low-dose training pair for DDnet.
type EnhancementPair = dataset.EnhancementPair

// NewPipeline assembles a pipeline from an optional enhancer and a
// classifier.
func NewPipeline(enh *ddnet.DDnet, cls *classify.Classifier) *Pipeline {
	return core.NewPipeline(enh, cls)
}

// NewDDnet builds the paper's enhancement network; use
// ddnet.PaperConfig() for the Table 2 architecture or
// ddnet.TinyConfig() for a laptop-scale variant.
func NewDDnet(seed int64, cfg ddnet.Config) *ddnet.DDnet {
	return ddnet.New(rand.New(rand.NewSource(seed)), cfg)
}

// NewClassifier builds the 3D DenseNet classifier; use
// classify.DenseNet121Config() for the paper architecture or
// classify.SmallConfig() for a laptop-scale variant.
func NewClassifier(seed int64, cfg classify.Config) *classify.Classifier {
	return classify.New(rand.New(rand.NewSource(seed)), cfg)
}

// BuildEnhancementPairs generates synthetic clean/low-dose training
// pairs through the full CT physics chain.
func BuildEnhancementPairs(cfg dataset.EnhancementConfig) []EnhancementPair {
	return dataset.BuildEnhancement(cfg)
}

// BuildCohort generates a labelled synthetic screening cohort.
func BuildCohort(cfg dataset.CohortConfig) []Case {
	return dataset.BuildCohort(cfg)
}

// TrainEnhancer trains DDnet with the paper's composite loss and
// returns the per-epoch loss curve.
func TrainEnhancer(m *ddnet.DDnet, pairs []EnhancementPair, cfg core.EnhancerTrainingConfig) []float64 {
	return core.TrainEnhancer(m, pairs, cfg)
}

// TrainClassifier trains the 3D classifier with binary cross-entropy
// and returns the per-epoch loss curve.
func TrainClassifier(c *classify.Classifier, cases []Case, cfg core.ClassifierTrainingConfig) []float64 {
	return core.TrainClassifier(c, cases, cfg)
}
