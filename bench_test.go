package computecovid19

// One benchmark per table and figure of the paper's evaluation (§5).
// Each benchmark regenerates its artifact through internal/experiments
// and reports domain-specific metrics alongside ns/op. Run with
//
//	go test -bench=. -benchmem
//
// cmd/ccbench prints the rendered tables themselves.

import (
	"math/rand"
	"testing"

	"computecovid19/internal/ddnet"
	"computecovid19/internal/device"
	"computecovid19/internal/distrib"
	"computecovid19/internal/experiments"
	"computecovid19/internal/kernels"
)

func quick() experiments.Config { return experiments.QuickConfig() }

func BenchmarkTable1_Datasets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table1(quick()); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable2_DDnetShapes(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Table2(quick()); len(out) == 0 {
			b.Fatal("empty table")
		}
	}
}

func BenchmarkTable3_DistributedTraining(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3Data(quick())
		b.ReportMetric(rows[0].ProjectedRuntimeSec, "proj-1node-s")
		b.ReportMetric(rows[7].ProjectedRuntimeSec, "proj-8node-b64-s")
		b.ReportMetric(rows[0].MeasuredMSSSIM*100, "msssim-b1-%")
		b.ReportMetric(rows[7].MeasuredMSSSIM*100, "msssim-b64-%")
	}
}

func BenchmarkTable4_HeterogeneousInference(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := experiments.Table4Data()
		b.ReportMetric(rows[0].OpenCLSec, "v100-opencl-s")
		b.ReportMetric(rows[4].OpenCLSec, "cpu-opencl-s")
		b.ReportMetric(rows[5].OpenCLSec, "fpga-opencl-s")
	}
}

func BenchmarkTable5_KernelTimes(b *testing.B) {
	cc := kernels.DDnetCounts(ddnet.PaperConfig().Arch(), 512)
	v100, _ := device.PlatformByName("Nvidia V100 GPU")
	for i := 0; i < b.N; i++ {
		t := v100.Project(cc, kernels.REFPFLU, false)
		b.ReportMetric(t.Conv, "v100-conv-s")
		b.ReportMetric(t.Deconv, "v100-deconv-s")
	}
}

func BenchmarkTable5_MeasuredKernelsThisMachine(b *testing.B) {
	// Real Go-kernel DDnet inference on this CPU (reduced size), the
	// measured analogue of the Table 5 CPU row.
	rng := rand.New(rand.NewSource(1))
	cfg := ddnet.PaperConfig()
	b.ResetTimer()
	var total kernels.Timing
	for i := 0; i < b.N; i++ {
		total.Add(kernels.RunDDnetInference(cfg.Arch(), 64, kernels.REFPFLU, 0, rng))
	}
	n := float64(b.N)
	b.ReportMetric(total.Conv.Seconds()/n, "conv-s/op")
	b.ReportMetric(total.Deconv.Seconds()/n, "deconv-s/op")
	b.ReportMetric(total.Other.Seconds()/n, "other-s/op")
}

func BenchmarkTable6_OpCounts(b *testing.B) {
	s := kernels.ConvShape{InC: 32, H: 512, W: 512, OutC: 32, K: 5}
	for i := 0; i < b.N; i++ {
		c := kernels.ConvCounters(s)
		b.ReportMetric(float64(c.Loads)/1e6, "conv-loads-M")
		b.ReportMetric(float64(c.Flops)/1e6, "conv-flops-M")
	}
}

func BenchmarkTable7_OptimizationLadder(b *testing.B) {
	// Measured on this machine: the scatter→gather refactoring is the
	// dominant win, exactly the paper's Table 7 story.
	rng := rand.New(rand.NewSource(2))
	cfg := ddnet.PaperConfig()
	variants := []kernels.Variant{kernels.Baseline, kernels.REF, kernels.REFPF, kernels.REFPFLU}
	names := []string{"baseline-s", "ref-s", "refpf-s", "refpflu-s"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for vi, v := range variants {
			t := kernels.RunDDnetInference(cfg.Arch(), 48, v, 0, rng)
			b.ReportMetric(t.Total().Seconds(), names[vi])
		}
	}
}

func BenchmarkTable8_EnhancementAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAccuracy(quick())
		b.ReportMetric(r.MSEYX, "mse-yx")
		b.ReportMetric(r.MSEYFX, "mse-yfx")
		b.ReportMetric(r.MSSSIMYX*100, "msssim-yx-%")
		b.ReportMetric(r.MSSSIMYFX*100, "msssim-yfx-%")
	}
}

func BenchmarkTable9_Figure13_AccuracyROC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAccuracy(quick())
		b.ReportMetric(r.Plain.Accuracy*100, "plain-acc-%")
		b.ReportMetric(r.Enhanced.Accuracy*100, "enh-acc-%")
		b.ReportMetric(r.Plain.AUC, "plain-auc")
		b.ReportMetric(r.Enhanced.AUC, "enh-auc")
	}
}

func BenchmarkFigure2_Epidemic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Figure2(quick()); len(out) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkFigure8_LowDoseSim(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := experiments.Figure8Run(quick())
		b.ReportMetric(d.FullDosePSNR, "fulldose-psnr-dB")
		b.ReportMetric(d.LowDosePSNR, "lowdose-psnr-dB")
	}
}

func BenchmarkFigure11_12_TrainingAndEnhancement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunAccuracy(quick())
		curve := r.EnhancerCurve
		b.ReportMetric(curve[0], "enh-loss-first")
		b.ReportMetric(curve[len(curve)-1], "enh-loss-last")
	}
}

func BenchmarkSectionTimings(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.SectionTimings(quick()); len(out) == 0 {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTurnaround(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out := experiments.Turnaround(quick()); len(out) == 0 {
			b.Fatal("empty report")
		}
	}
}

// Ablation benches for the design choices DESIGN.md calls out.

func BenchmarkAblation_DeconvScatterVsGather(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	s := kernels.ConvShape{InC: 16, H: 96, W: 96, OutC: 16, K: 5}
	x := make([]float32, s.InLen())
	w := make([]float32, s.InC*s.OutC*s.K*s.K)
	for i := range x {
		x[i] = rng.Float32()
	}
	for i := range w {
		w[i] = rng.Float32()
	}
	out := make([]float32, s.OutLen())
	b.Run("scatter", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.Deconv(kernels.Baseline, x, w, out, s, 1)
		}
	})
	b.Run("gather", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.Deconv(kernels.REF, x, w, out, s, 1)
		}
	})
	b.Run("gather-unrolled", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			kernels.Deconv(kernels.REFPFLU, x, w, out, s, 1)
		}
	})
}

func BenchmarkAblation_DenoisingStrategies(b *testing.B) {
	// FBP vs regularized SART vs FBP+DDnet at reduced dose.
	for i := 0; i < b.N; i++ {
		a := experiments.RunDenoisingAblation(quick())
		b.ReportMetric(a.FBPMSE, "fbp-mse")
		b.ReportMetric(a.SARTMSE, "sart-mse")
		b.ReportMetric(a.DDnetMSE, "ddnet-mse")
	}
}

func BenchmarkAblation_DDnetForward(b *testing.B) {
	m := NewDDnet(4, ddnet.TinyConfig())
	rng := rand.New(rand.NewSource(5))
	img := randImage(rng, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Enhance(img)
	}
}

func BenchmarkAblation_FBPReconstruction(b *testing.B) {
	var last experiments.Figure8Data
	for i := 0; i < b.N; i++ {
		last = experiments.Figure8Run(quick())
	}
	b.ReportMetric(last.FullDosePSNR, "psnr-dB")
}

func BenchmarkAblation_RingAllReduce(b *testing.B) {
	const nodes, length = 8, 1 << 16
	vecs := make([][]float32, nodes)
	for i := range vecs {
		vecs[i] = make([]float32, length)
		for j := range vecs[i] {
			vecs[i][j] = float32(i + j)
		}
	}
	b.SetBytes(int64(4 * length * nodes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		distrib.RingAllReduce(vecs)
	}
}
