// Monitoring: the second half of the paper's title. Follow one synthetic
// patient across four CT timepoints, quantify the opacified lung
// fraction (lesion burden) through the pipeline, grade disease extent
// with the multi-class severity head, and report the progression trend.
package main

import (
	"fmt"
	"math/rand"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/phantom"
	"computecovid19/internal/volume"
)

func main() {
	const size, depth = 48, 6

	// One patient's anatomy; lesions grow 1.5× between visits.
	rng := rand.New(rand.NewSource(42))
	base := phantom.NewChest(rng, size, depth)
	base.AddRandomLesions(rng, 3, 0.5)
	template := append([]phantom.Lesion(nil), base.Lesions...)

	days := []int{0, 7, 14, 21}
	var scans []*volume.Volume
	scale := 1.0
	for range days {
		c := *base
		c.Lesions = make([]phantom.Lesion, len(template))
		for i, l := range template {
			l.RX *= scale
			l.RY *= scale
			l.RZ *= scale
			c.Lesions[i] = l
		}
		v := volume.New(depth, size, size)
		for z := 0; z < depth; z++ {
			copy(v.Slice(z), c.SliceHU(z))
		}
		scans = append(scans, v)
		scale *= 1.5
	}

	// Pipeline (no enhancement needed for normal-dose scans here).
	cls := classify.New(rand.New(rand.NewSource(7)), classify.SmallConfig())
	pipe := core.NewPipeline(nil, cls)

	records := pipe.Monitor(scans, days)
	fmt.Println("serial CT monitoring of one synthetic patient:")
	fmt.Print(core.MonitorReport(records))

	// Severity grading of the first and last scan (untrained grader
	// shown for API illustration; cmd/cctrain-style training applies).
	grader := classify.NewSeverityGrader(rand.New(rand.NewSource(8)), classify.SmallConfig(), classify.NumGrades)
	for _, idx := range []int{0, len(scans) - 1} {
		norm := scans[idx].Normalized(-1000, 1000)
		grade, probs := grader.PredictGrade(norm)
		fmt.Printf("day %d severity head: %s (probs %.2f / %.2f / %.2f)\n",
			days[idx], grade, probs[0], probs[1], probs[2])
	}
	fmt.Println("\n(the lesion burden is the clinically meaningful series; the grader needs training first)")
}
