// Screening: run a synthetic low-dose cohort through ComputeCOVID19+
// with and without Enhancement AI and compare accuracy and AUC-ROC —
// a miniature of the paper's Figure 13 experiment.
package main

import (
	"fmt"
	"math/rand"

	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/metrics"
)

func main() {
	const (
		size, depth = 32, 8
		photons     = 100
	)

	// Enhancement AI trained on low-dose pairs from the same physics.
	fmt.Println("training Enhancement AI...")
	ecfg := dataset.EnhancementConfig{
		Size: size, Count: 12, Views: 120, Detectors: 64,
		PhotonsPerRay: 1e6, DoseDivisor: 1e6 / photons, LesionFraction: 0.5, Seed: 11,
	}
	enh := ddnet.New(rand.New(rand.NewSource(12)), ddnet.TinyConfig())
	etc := core.DefaultEnhancerTraining()
	etc.Epochs = 10
	core.TrainEnhancer(enh, dataset.BuildEnhancement(ecfg), etc)

	// Classification AI trained on clean scans.
	fmt.Println("training Classification AI...")
	ccfg := dataset.CohortConfig{
		Size: size, Depth: depth, Count: 28, PositiveFraction: 0.5,
		Severity: 1.0, LowDose: true, Views: 120, Detectors: 64,
		PhotonsPerRay: photons, Seed: 13,
	}
	cohort := dataset.BuildCohort(ccfg)
	trainCases, _, testCases := dataset.Split(cohort, 0.6, 0)
	cleanTrain := make([]dataset.Case, len(trainCases))
	for i, c := range trainCases {
		cleanTrain[i] = c
		cleanTrain[i].Volume = c.Clean
	}
	cls := classify.New(rand.New(rand.NewSource(14)), classify.SmallConfig())
	ctc := core.DefaultClassifierTraining()
	ctc.Epochs, ctc.LR, ctc.Augment = 16, 5e-3, false
	core.TrainClassifier(cls, cleanTrain, ctc)

	// Screen the degraded test cohort both ways.
	fmt.Printf("\nscreening %d low-dose scans...\n\n", len(testCases))
	for _, setup := range []struct {
		name string
		pipe *core.Pipeline
	}{
		{"Segmentation+Classification          ", core.NewPipeline(nil, cls)},
		{"Enhancement+Segmentation+Classification", core.NewPipeline(enh, cls)},
	} {
		probs, labels := setup.pipe.Score(testCases)
		th := metrics.BestThreshold(probs, labels)
		conf := metrics.Confuse(probs, labels, th)
		fmt.Printf("%s  accuracy %.1f%%  AUC %.3f  (TP %d FP %d FN %d TN %d)\n",
			setup.name, conf.Accuracy()*100, metrics.AUC(probs, labels),
			conf.TP, conf.FP, conf.FN, conf.TN)
	}
	fmt.Println("\npaper (Figure 13): 86.32% / 0.890 without enhancement, 90.53% / 0.942 with")
}
