// Hetero: sweep DDnet inference across the paper's six evaluation
// platforms (projected through the roofline model) and across the
// Table 7 optimization ladder, then measure the actual Go kernels on
// this machine for comparison.
package main

import (
	"fmt"
	"math/rand"

	"computecovid19/internal/ddnet"
	"computecovid19/internal/device"
	"computecovid19/internal/kernels"
)

func main() {
	cc := kernels.DDnetCounts(ddnet.PaperConfig().Arch(), 512)
	fmt.Printf("paper DDnet at 512²: conv %.1f GFLOP, deconv %.1f GFLOP, %.1f GB raw traffic\n\n",
		float64(cc.Conv.Flops)/1e9, float64(cc.Deconv.Flops)/1e9,
		float64(cc.Total().Bytes())/1e9)

	fmt.Println("projected inference time by platform and optimization level (seconds):")
	fmt.Printf("%-30s %10s %10s %10s %10s\n", "platform", "Baseline", "+REF", "+PF", "+LU")
	for _, p := range device.Catalog() {
		fmt.Printf("%-30s", p.Name)
		for _, v := range []kernels.Variant{kernels.Baseline, kernels.REF, kernels.REFPF, kernels.REFPFLU} {
			fmt.Printf(" %10.2f", p.Project(cc, v, false).Total())
		}
		fmt.Println()
	}
	fpga, _ := device.PlatformByName("Intel Arria 10 GX 1150 FPGA")
	opt := fpga.Project(cc, kernels.REFPFLU, true)
	fmt.Printf("\nFPGA with §4.2.3 vendor optimizations (CU×2, vectorize×5, runtime reconfig): %.2f s (paper: 16.74 s)\n\n", opt.Total())

	// Measured: the real Go kernels on this machine at a reduced size.
	const size = 64
	rng := rand.New(rand.NewSource(1))
	fmt.Printf("measured on this machine (Go kernels, DDnet at %d²):\n", size)
	for _, v := range []kernels.Variant{kernels.Baseline, kernels.REF, kernels.REFPF, kernels.REFPFLU} {
		t := kernels.RunDDnetInference(ddnet.PaperConfig().Arch(), size, v, 0, rng)
		fmt.Printf("  %-26s conv %7.3fs  deconv %7.3fs  other %6.3fs  total %7.3fs\n",
			v, t.Conv.Seconds(), t.Deconv.Seconds(), t.Other.Seconds(), t.Total().Seconds())
	}
	fmt.Println("\nthe scatter→gather deconvolution refactoring (REF) dominates, as in the paper's Table 7")
}
