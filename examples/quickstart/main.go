// Quickstart: train the two learned stages of ComputeCOVID19+ at demo
// scale and diagnose one synthetic patient. Runs in well under a minute
// on one CPU core.
package main

import (
	"fmt"

	cc "computecovid19"
	"computecovid19/internal/classify"
	"computecovid19/internal/core"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
)

func main() {
	// 1. Enhancement AI: DDnet trained on simulated low-dose CT pairs.
	pairCfg := dataset.DefaultEnhancementConfig()
	pairCfg.Size, pairCfg.Count = 32, 8
	pairCfg.Views, pairCfg.Detectors = 90, 64
	pairCfg.DoseDivisor = 1e4
	enhancer := cc.NewDDnet(1, ddnet.TinyConfig())
	trainCfg := core.DefaultEnhancerTraining()
	trainCfg.Epochs = 4
	cc.TrainEnhancer(enhancer, cc.BuildEnhancementPairs(pairCfg), trainCfg)
	fmt.Println("enhancement AI trained")

	// 2. Classification AI: 3D DenseNet trained on a labelled cohort.
	cohortCfg := dataset.DefaultCohortConfig()
	cohortCfg.Count, cohortCfg.Size, cohortCfg.Depth = 20, 32, 8
	classifier := cc.NewClassifier(2, classify.SmallConfig())
	clsCfg := core.DefaultClassifierTraining()
	clsCfg.Epochs, clsCfg.LR, clsCfg.Augment = 16, 5e-3, false
	cc.TrainClassifier(classifier, cc.BuildCohort(cohortCfg), clsCfg)
	fmt.Println("classification AI trained")

	// 3. Diagnose a new patient through the full pipeline
	//    (Enhancement AI → Segmentation AI → Classification AI).
	patientCfg := cohortCfg
	patientCfg.Seed, patientCfg.Count = 777, 2
	patients := cc.BuildCohort(patientCfg)
	pipeline := cc.NewPipeline(enhancer, classifier)
	for i, p := range patients {
		r := pipeline.Diagnose(p.Volume)
		fmt.Printf("patient %d: P(COVID-19) = %.3f (ground truth positive: %v)\n",
			i, r.Probability, p.Label)
	}
}
