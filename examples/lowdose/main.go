// Low-dose CT walk-through: the paper's §3.1.2 simulation chain step by
// step — phantom in Hounsfield units, Siddon fan-beam projection with
// the paper's geometry, Beer's-law Poisson noise, filtered back
// projection — followed by DDnet enhancement, reporting Table 8-style
// quality numbers at each stage.
package main

import (
	"fmt"
	"math/rand"

	"computecovid19/internal/core"
	"computecovid19/internal/ctsim"
	"computecovid19/internal/dataset"
	"computecovid19/internal/ddnet"
	"computecovid19/internal/metrics"
	"computecovid19/internal/phantom"
	"computecovid19/internal/tensor"
)

func main() {
	const size = 48
	rng := rand.New(rand.NewSource(3))

	// A COVID-positive chest phantom.
	chest := phantom.NewChest(rng, size, 1)
	chest.AddRandomLesions(rng, 2, 0.9)
	hu := chest.SliceHU(0)
	fmt.Printf("phantom: %d×%d px, HU range [%.0f, %.0f]\n", size, size,
		minf(hu), maxf(hu))

	// Fan-beam acquisition with the paper's geometry (SOD 1000 mm,
	// SDD 1500 mm), scaled detector/view counts.
	grid := ctsim.Grid{Size: size, PixelSize: 360.0 / size}
	fan := ctsim.PaperFanGeometry(grid.FOV())
	fan.NumViews, fan.NumDetectors = 180, 96
	fan.DetectorSpacing = grid.FOV() * 1.5 * (fan.SDD / fan.SOD) / float64(fan.NumDetectors)

	mu := ctsim.HUImageToMu(hu)
	sino := ctsim.ForwardProjectFan(grid, mu, fan)
	fmt.Printf("sinogram: %d views × %d detectors, max line integral %.2f\n",
		sino.Views, sino.Det, maxs(sino.Data))

	// Beer's law + Poisson noise at two dose levels, then FBP.
	clean := normalize(hu)
	for _, b := range []float64{1e6, 200} {
		noisy := ctsim.ApplyPoissonNoise(sino, b, rng)
		rec := ctsim.MuImageToHU(ctsim.ReconstructFan(noisy, grid, fan, ctsim.RamLak))
		recN := normalize(rec)
		fmt.Printf("FBP @ b=%.0e photons/ray: PSNR %.2f dB, SSIM %.4f\n",
			b, metrics.PSNR(clean, recN, 1), metrics.SSIM(clean, recN))
	}

	// Train DDnet on pairs from the same physics and enhance a held-out
	// low-dose image.
	fmt.Println("\ntraining DDnet on simulated low-dose pairs...")
	cfg := dataset.EnhancementConfig{
		Size: size, Count: 10, Views: 180, Detectors: 96,
		PhotonsPerRay: 1e6, DoseDivisor: 5000, LesionFraction: 0.5, Seed: 4,
	}
	pairs := dataset.BuildEnhancement(cfg)
	train, test := pairs[:8], pairs[8:]
	net := ddnet.New(rand.New(rand.NewSource(5)), ddnet.TinyConfig())
	tc := core.DefaultEnhancerTraining()
	tc.Epochs = 8
	core.TrainEnhancer(net, train, tc)

	for i, p := range test {
		enh := net.Enhance(p.LowDose)
		fmt.Printf("test image %d: low-dose MSE %.5f → enhanced MSE %.5f (MS-SSIM %.4f → %.4f)\n",
			i,
			metrics.MSE(p.Clean, p.LowDose), metrics.MSE(p.Clean, enh),
			metrics.MSSSIM(p.Clean, p.LowDose), metrics.MSSSIM(p.Clean, enh))
	}
}

func normalize(hu []float32) *tensor.Tensor {
	t := tensor.New(1, len(hu))
	side := isqrt(len(hu))
	t = tensor.New(side, side)
	for i, v := range hu {
		t.Data[i] = float32(ctsim.NormalizeHU(float64(v), ctsim.FullWindowLo, ctsim.FullWindowHi))
	}
	return t
}

func isqrt(n int) int {
	for i := 1; ; i++ {
		if i*i >= n {
			return i
		}
	}
}

func minf(s []float32) float64 {
	m := s[0]
	for _, v := range s {
		if v < m {
			m = v
		}
	}
	return float64(m)
}

func maxf(s []float32) float64 {
	m := s[0]
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return float64(m)
}

func maxs(s []float64) float64 {
	m := s[0]
	for _, v := range s {
		if v > m {
			m = v
		}
	}
	return m
}
